#include <gtest/gtest.h>

#include <thread>

#include "core/channel.hpp"
#include "dist/ship.hpp"
#include "processes/basic.hpp"
#include "rmi/compute_server.hpp"
#include "rmi/migrate.hpp"

namespace dpn {
namespace {

using core::Channel;
using processes::Collect;
using processes::CollectSink;
using processes::Sequence;

/// Collect with a per-element delay, so migration tests have a stream
/// that is reliably still flowing when they act on the producer.
class SlowDrain final : public core::IterativeProcess {
 public:
  SlowDrain(std::shared_ptr<core::ChannelInputStream> in,
            std::shared_ptr<CollectSink<std::int64_t>> sink,
            std::chrono::microseconds delay)
      : sink_(std::move(sink)), delay_(delay) {
    track_input(std::move(in));
  }
  std::string type_name() const override { return "test.SlowDrain"; }
  void write_fields(serial::ObjectOutputStream&) const override {
    throw SerializationError{"local-only"};
  }

 protected:
  void step() override {
    io::DataInputStream in{input(0)};
    const std::int64_t value = in.read_i64();
    std::this_thread::sleep_for(delay_);
    sink_->push(value);
  }

 private:
  std::shared_ptr<CollectSink<std::int64_t>> sink_;
  std::chrono::microseconds delay_;
};

/// A serializable Sequence with a per-element delay: migration tests need
/// a source that is still mid-stream when they pause it, even when its
/// output runs over a socket (where TCP buffering removes backpressure).
class SlowSequence final : public core::IterativeProcess {
 public:
  SlowSequence() = default;
  SlowSequence(std::int64_t start, std::shared_ptr<core::ChannelOutputStream> out,
               long iterations, std::int64_t delay_us)
      : IterativeProcess(iterations), next_(start), delay_us_(delay_us) {
    track_output(std::move(out));
  }

  std::string type_name() const override { return "test.SlowSequence"; }
  void write_fields(serial::ObjectOutputStream& out) const override {
    write_base(out);
    out.write_i64(next_);
    out.write_i64(delay_us_);
  }
  static std::shared_ptr<SlowSequence> read_object(
      serial::ObjectInputStream& in) {
    auto process = std::make_shared<SlowSequence>();
    process->read_base(in);
    process->next_ = in.read_i64();
    process->delay_us_ = in.read_i64();
    return process;
  }

 protected:
  void step() override {
    io::DataOutputStream out{output(0)};
    out.write_i64(next_++);
    std::this_thread::sleep_for(std::chrono::microseconds{delay_us_});
  }

 private:
  std::int64_t next_ = 0;
  std::int64_t delay_us_ = 0;
};

[[maybe_unused]] const bool kSlowSequenceRegistered =
    serial::register_type<SlowSequence>("test.SlowSequence");

// --- Pause / resume / abandon ----------------------------------------------

TEST(Pause, ParksAtStepBoundaryAndResumes) {
  auto ch = std::make_shared<Channel>(64);  // small: producer backpressured
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto producer = std::make_shared<Sequence>(0, ch->output(), 500);
  auto drain = std::make_shared<SlowDrain>(ch->input(), sink,
                                           std::chrono::microseconds{50});

  std::jthread producer_thread{[&] { producer->run(); }};
  std::jthread drain_thread{[&] { drain->run(); }};

  while (sink->size() < 20) std::this_thread::yield();
  producer->request_pause();
  ASSERT_TRUE(producer->await_pause());
  EXPECT_TRUE(producer->paused());

  // Let the consumer drain everything in flight (the channel holds at
  // most 8 elements); with the producer parked the sink must go quiet.
  std::this_thread::sleep_for(std::chrono::milliseconds{20});
  const std::size_t settled = sink->size();
  std::this_thread::sleep_for(std::chrono::milliseconds{20});
  EXPECT_EQ(sink->size(), settled);
  EXPECT_LT(settled, 500u);

  producer->resume();
  EXPECT_FALSE(producer->paused());
  producer_thread.join();
  drain_thread.join();

  const auto values = sink->values();
  ASSERT_EQ(values.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(values[i], i);
}

TEST(Pause, AwaitReturnsFalseWhenProcessFinishedFirst) {
  auto ch = std::make_shared<Channel>(4096);
  auto producer = std::make_shared<Sequence>(0, ch->output(), 3);
  producer->run();  // completes immediately
  producer->request_pause();
  EXPECT_FALSE(producer->await_pause());
}

TEST(Pause, AbandonReturnsWithoutClosingEndpoints) {
  // A slow source that fits entirely in the channel: it neither blocks on
  // a full pipe (which would delay parking) nor finishes before the pause.
  auto ch = std::make_shared<Channel>(4096);
  auto producer =
      std::make_shared<SlowSequence>(0, ch->output(), 400, /*delay_us=*/100);
  std::jthread producer_thread{[&] { producer->run(); }};

  producer->request_pause();
  ASSERT_TRUE(producer->await_pause());
  producer->abandon();
  producer_thread.join();  // run() returned...

  // ... and the channel is untouched: still writable, not write-closed.
  EXPECT_FALSE(ch->pipe()->write_closed());
  io::DataOutputStream out{ch->output()};
  EXPECT_NO_THROW(out.write_i64(42));
}

TEST(Pause, ResumeRequiresPausedState) {
  auto ch = std::make_shared<Channel>(4096);
  auto producer = std::make_shared<Sequence>(0, ch->output(), 1);
  EXPECT_THROW(producer->resume(), UsageError);
  EXPECT_THROW(producer->abandon(), UsageError);
}

// --- Migration of a running process -------------------------------------------

TEST(Migrate, RunningProducerMovesToComputeServer) {
  auto node_a = dist::NodeContext::create();
  rmi::ComputeServer server_b{"migrate-target"};

  auto ch = std::make_shared<Channel>(256);
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto producer = std::make_shared<Sequence>(0, ch->output(), 200);
  auto drain = std::make_shared<SlowDrain>(ch->input(), sink,
                                           std::chrono::microseconds{100});

  std::jthread producer_thread{[&] { producer->run(); }};
  std::jthread drain_thread{[&] { drain->run(); }};

  // Let some of the stream flow locally first.
  while (sink->size() < 50) std::this_thread::yield();

  rmi::ServerHandle handle{rmi::Endpoint{"127.0.0.1", server_b.port()},
                           node_a};
  ASSERT_TRUE(rmi::migrate(producer, handle));
  producer_thread.join();  // local instance returned via abandon

  drain_thread.join();  // remote continuation finishes the stream
  const auto values = sink->values();
  ASSERT_EQ(values.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(values[i], i);  // no loss, no dup
  EXPECT_EQ(server_b.processes_hosted(), 1u);
  server_b.stop();
}

TEST(Migrate, FinishedProcessReportsFalse) {
  auto node_a = dist::NodeContext::create();
  rmi::ComputeServer server_b{"migrate-none"};
  auto ch = std::make_shared<Channel>(4096);
  auto producer = std::make_shared<Sequence>(0, ch->output(), 2);
  producer->run();
  rmi::ServerHandle handle{rmi::Endpoint{"127.0.0.1", server_b.port()},
                           node_a};
  EXPECT_FALSE(rmi::migrate(producer, handle));
  server_b.stop();
}

TEST(Migrate, FailedShipmentResumesInPlace) {
  auto node_a = dist::NodeContext::create();
  auto ch = std::make_shared<Channel>(256);
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto producer = std::make_shared<Sequence>(0, ch->output(), 100);
  auto drain = std::make_shared<SlowDrain>(ch->input(), sink,
                                           std::chrono::microseconds{100});

  std::jthread producer_thread{[&] { producer->run(); }};
  std::jthread drain_thread{[&] { drain->run(); }};
  while (sink->size() < 10) std::this_thread::yield();

  // Port 1: nothing listens; the connect fails before anything ships.
  rmi::ServerHandle dead{rmi::Endpoint{"127.0.0.1", 1}, node_a};
  EXPECT_THROW(rmi::migrate(producer, dead), NetError);

  // The producer resumed and the stream completes locally, intact.
  producer_thread.join();
  drain_thread.join();
  ASSERT_EQ(sink->size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sink->values()[i], i);
}

TEST(Migrate, TwiceAcrossThreeNodes) {
  // A -> B -> C while the stream is flowing: the second hop exercises the
  // redirect protocol with a process that has real execution history.
  auto node_a = dist::NodeContext::create();
  auto node_b = dist::NodeContext::create();
  auto node_c = dist::NodeContext::create();

  auto ch = std::make_shared<Channel>(256);
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto producer =
      std::make_shared<SlowSequence>(0, ch->output(), 300, /*delay_us=*/100);
  auto drain = std::make_shared<Collect>(ch->input(), sink);

  std::jthread drain_thread{[&] { drain->run(); }};
  std::jthread run_a{[&] { producer->run(); }};
  while (sink->size() < 30) std::this_thread::yield();

  // Hop 1: ship the parked producer to "node B" by hand.
  producer->request_pause();
  ASSERT_TRUE(producer->await_pause());
  const ByteVector to_b = dist::ship_process(node_a, producer);
  producer->abandon();
  run_a.join();

  auto at_b = std::dynamic_pointer_cast<core::IterativeProcess>(
      dist::receive_process(node_b, {to_b.data(), to_b.size()}));
  ASSERT_TRUE(at_b);
  std::jthread run_b{[&] { at_b->run(); }};
  while (sink->size() < 120) std::this_thread::yield();

  // Hop 2: again, B -> C; the producer's output endpoint is now remote,
  // so serialization redirects the consumer to C.
  at_b->request_pause();
  ASSERT_TRUE(at_b->await_pause());
  const ByteVector to_c = dist::ship_process(node_b, at_b);
  at_b->abandon();
  run_b.join();

  auto at_c = dist::receive_process(node_c, {to_c.data(), to_c.size()});
  std::jthread run_c{[&] { at_c->run(); }};

  drain_thread.join();
  const auto values = sink->values();
  ASSERT_EQ(values.size(), 300u);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(values[i], i);
}

}  // namespace
}  // namespace dpn
