#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/bytes.hpp"
#include "support/rng.hpp"
#include "sched/queue.hpp"
#include "support/sync.hpp"

namespace dpn {
namespace {

TEST(Bytes, EndianRoundTrip16) {
  std::uint8_t buf[2];
  put_u16(buf, 0xbeef);
  EXPECT_EQ(buf[0], 0xbe);
  EXPECT_EQ(buf[1], 0xef);
  EXPECT_EQ(get_u16(buf), 0xbeef);
}

TEST(Bytes, EndianRoundTrip32) {
  std::uint8_t buf[4];
  put_u32(buf, 0xdeadbeefu);
  EXPECT_EQ(buf[0], 0xde);
  EXPECT_EQ(buf[3], 0xef);
  EXPECT_EQ(get_u32(buf), 0xdeadbeefu);
}

TEST(Bytes, EndianRoundTrip64) {
  std::uint8_t buf[8];
  const std::uint64_t value = 0x0123456789abcdefULL;
  put_u64(buf, value);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0xef);
  EXPECT_EQ(get_u64(buf), value);
}

TEST(Bytes, DoubleBitsRoundTrip) {
  for (const double d : {0.0, -0.0, 1.5, -3.25e-10, 1e308}) {
    EXPECT_EQ(bits_to_double(double_to_bits(d)), d);
  }
}

TEST(Bytes, FloatBitsRoundTrip) {
  for (const float f : {0.0f, 1.5f, -2.75f}) {
    EXPECT_EQ(bits_to_float(float_to_bits(f)), f);
  }
}

TEST(Bytes, HexDump) {
  const ByteVector data{0x00, 0xff, 0x10};
  EXPECT_EQ(to_hex({data.data(), data.size()}), "00ff10");
}

TEST(Bytes, StringConversion) {
  const std::string s = "hello";
  EXPECT_EQ(to_string(as_bytes(s)), s);
}

TEST(Rng, SplitMixDeterministic) {
  SplitMix64 a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroDeterministic) {
  Xoshiro256 a{7}, b{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRange) {
  Xoshiro256 rng{11};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng{13};
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 800; ++i) ++seen[rng.below(8)];
  for (const int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Xoshiro256 rng{3};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Event, SetReleasesWaiter) {
  Event event;
  std::jthread setter{[&] { event.set(); }};
  event.wait();
  EXPECT_TRUE(event.is_set());
}

TEST(Event, WaitForTimesOut) {
  Event event;
  EXPECT_FALSE(event.wait_for(std::chrono::milliseconds{10}));
  event.set();
  EXPECT_TRUE(event.wait_for(std::chrono::milliseconds{10}));
}

// The queue itself moved to sched/queue.hpp (pop suspends fibers under
// the M:N scheduler); the plain-thread semantics tested here are
// unchanged.  sched_test covers the fiber path.
using sched::BlockingQueue;

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> queue;
  queue.push(1);
  queue.push(2);
  queue.push(3);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), 3);
}

TEST(BlockingQueue, PopBlocksUntilPush) {
  BlockingQueue<int> queue;
  std::jthread producer{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    queue.push(42);
  }};
  EXPECT_EQ(queue.pop(), 42);
}

TEST(BlockingQueue, CloseDrainsThenNullopt) {
  BlockingQueue<int> queue;
  queue.push(1);
  queue.close();
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_FALSE(queue.push(2));  // rejected after close
}

TEST(BlockingQueue, CloseWakesBlockedPop) {
  BlockingQueue<int> queue;
  std::jthread closer{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    queue.close();
  }};
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BlockingQueue, TryPop) {
  BlockingQueue<int> queue;
  EXPECT_EQ(queue.try_pop(), std::nullopt);
  queue.push(9);
  EXPECT_EQ(queue.try_pop(), 9);
}

TEST(BlockingQueue, ConcurrentProducersAllDelivered) {
  BlockingQueue<int> queue;
  constexpr int kProducers = 8;
  constexpr int kEach = 200;
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&queue, p] {
        for (int i = 0; i < kEach; ++i) queue.push(p * kEach + i);
      });
    }
  }
  queue.close();
  std::vector<bool> seen(kProducers * kEach, false);
  while (auto item = queue.pop()) seen[static_cast<std::size_t>(*item)] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace dpn
