#include <gtest/gtest.h>

#include <thread>

#include "core/channel.hpp"
#include "dist/ship.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "rmi/compute_server.hpp"
#include "rmi/registry.hpp"

namespace dpn::rmi {
namespace {

using core::Channel;
using processes::Collect;
using processes::CollectSink;
using processes::Identity;
using processes::Sequence;

// --- Registry -----------------------------------------------------------------

TEST(Registry, RegisterAndLookup) {
  Registry registry{0};
  RegistryClient client{"127.0.0.1", registry.port()};
  client.register_name("alpha", Endpoint{"10.0.0.1", 1234});
  const auto found = client.lookup("alpha");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->host, "10.0.0.1");
  EXPECT_EQ(found->port, 1234);
}

TEST(Registry, LookupMissingReturnsNothing) {
  Registry registry{0};
  RegistryClient client{"127.0.0.1", registry.port()};
  EXPECT_FALSE(client.lookup("ghost").has_value());
}

TEST(Registry, ReRegistrationOverwrites) {
  Registry registry{0};
  RegistryClient client{"127.0.0.1", registry.port()};
  client.register_name("svc", Endpoint{"1.2.3.4", 1});
  client.register_name("svc", Endpoint{"5.6.7.8", 2});
  const auto found = client.lookup("svc");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->host, "5.6.7.8");
}

TEST(Registry, ListAndUnregister) {
  Registry registry{0};
  RegistryClient client{"127.0.0.1", registry.port()};
  client.register_name("a", Endpoint{"h", 1});
  client.register_name("b", Endpoint{"h", 2});
  auto names = client.list();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
  client.unregister_name("a");
  EXPECT_FALSE(client.lookup("a").has_value());
  EXPECT_TRUE(client.lookup("b").has_value());
}

TEST(Registry, ManyConcurrentClients) {
  Registry registry{0};
  {
    std::vector<std::jthread> clients;
    for (int i = 0; i < 8; ++i) {
      clients.emplace_back([&registry, i] {
        RegistryClient client{"127.0.0.1", registry.port()};
        client.register_name("svc" + std::to_string(i),
                             Endpoint{"h", static_cast<std::uint16_t>(i + 1)});
      });
    }
  }
  RegistryClient client{"127.0.0.1", registry.port()};
  EXPECT_EQ(client.list().size(), 8u);
}

// --- Tasks over the compute server ----------------------------------------------

/// Doubles its value; result is another DoubleTask carrying 2v.
class DoubleTask final : public core::Task {
 public:
  DoubleTask() = default;
  explicit DoubleTask(std::int64_t value) : value_(value) {}
  std::int64_t value() const { return value_; }

  std::shared_ptr<core::Task> run() override {
    return std::make_shared<DoubleTask>(2 * value_);
  }
  std::string type_name() const override { return "test.DoubleTask"; }
  void write_fields(serial::ObjectOutputStream& out) const override {
    out.write_i64(value_);
  }
  static std::shared_ptr<DoubleTask> read_object(
      serial::ObjectInputStream& in) {
    auto task = std::make_shared<DoubleTask>();
    task->value_ = in.read_i64();
    return task;
  }

 private:
  std::int64_t value_ = 0;
};

/// A task type the "server" cannot know: never registered.
class UnknownTask final : public core::Task {
 public:
  std::shared_ptr<core::Task> run() override { return nullptr; }
  std::string type_name() const override { return "test.Unknown"; }
  void write_fields(serial::ObjectOutputStream&) const override {}
};

/// A task that always fails.
class FailingTask final : public core::Task {
 public:
  std::shared_ptr<core::Task> run() override {
    throw std::runtime_error{"task exploded"};
  }
  std::string type_name() const override { return "test.FailingTask"; }
  void write_fields(serial::ObjectOutputStream&) const override {}
  static std::shared_ptr<FailingTask> read_object(
      serial::ObjectInputStream&) {
    return std::make_shared<FailingTask>();
  }
};

[[maybe_unused]] const bool kRegistered =
    serial::register_type<DoubleTask>("test.DoubleTask") &&
    serial::register_type<FailingTask>("test.FailingTask");

TEST(ComputeServer, Ping) {
  ComputeServer server{"pinger"};
  ServerHandle handle{Endpoint{"127.0.0.1", server.port()}, nullptr};
  EXPECT_NO_THROW(handle.ping());
}

TEST(ComputeServer, RunTaskReturnsResult) {
  ComputeServer server{"tasker"};
  ServerHandle handle{Endpoint{"127.0.0.1", server.port()}, nullptr};
  auto result = handle.submit(std::make_shared<DoubleTask>(21)).get();
  auto doubled = std::dynamic_pointer_cast<DoubleTask>(result);
  ASSERT_TRUE(doubled);
  EXPECT_EQ(doubled->value(), 42);
  EXPECT_EQ(server.tasks_run(), 1u);
}

TEST(ComputeServer, RunTaskErrorPropagates) {
  ComputeServer server{"failer"};
  ServerHandle handle{Endpoint{"127.0.0.1", server.port()}, nullptr};
  try {
    handle.submit(std::make_shared<FailingTask>()).get();
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string{e.what()}.find("task exploded"), std::string::npos);
  }
}

TEST(ComputeServer, UnknownTypeReported) {
  ComputeServer server{"stranger"};
  ServerHandle handle{Endpoint{"127.0.0.1", server.port()}, nullptr};
  // The type serializes fine (name is embedded) but the server has no
  // factory for it -- the C++ stand-in for a missing codebase download.
  EXPECT_THROW(handle.submit(std::make_shared<UnknownTask>()).get(), IoError);
}

TEST(ComputeServer, ConcurrentTasks) {
  ComputeServer server{"parallel"};
  std::vector<std::int64_t> results(8, 0);
  {
    std::vector<std::jthread> clients;
    for (int i = 0; i < 8; ++i) {
      clients.emplace_back([&server, &results, i] {
        ServerHandle handle{Endpoint{"127.0.0.1", server.port()}, nullptr};
        auto result = handle.submit(std::make_shared<DoubleTask>(i)).get();
        results[static_cast<std::size_t>(i)] =
            std::dynamic_pointer_cast<DoubleTask>(result)->value();
      });
    }
  }
  for (int i = 0; i < 8; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], 2 * i);
  EXPECT_EQ(server.tasks_run(), 8u);
}

TEST(ComputeServer, RegistryLookupAndRun) {
  Registry registry{0};
  ComputeServer server{"worker-1"};
  server.register_with("127.0.0.1", registry.port());
  auto handle = ServerHandle::lookup("127.0.0.1", registry.port(), "worker-1",
                                     nullptr);
  auto result = handle.submit(std::make_shared<DoubleTask>(5)).get();
  EXPECT_EQ(std::dynamic_pointer_cast<DoubleTask>(result)->value(), 10);
}

TEST(ComputeServer, LookupUnknownNameThrows) {
  Registry registry{0};
  EXPECT_THROW(
      ServerHandle::lookup("127.0.0.1", registry.port(), "nobody", nullptr),
      NetError);
}

TEST(ComputeServer, RunAsyncHostsProcessGraph) {
  // The paper's run(Runnable): ship a live pipeline stage to the server;
  // the channels reconnect automatically and data flows through it.
  auto client_node = dist::NodeContext::create();
  ComputeServer server{"host"};

  auto ch1 = std::make_shared<Channel>(256, "ch1");
  auto ch2 = std::make_shared<Channel>(256, "ch2");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto middle = std::make_shared<Identity>(ch1->input(), ch2->output());

  ServerHandle handle{Endpoint{"127.0.0.1", server.port()}, client_node};
  handle.submit(middle);
  EXPECT_EQ(server.processes_hosted(), 1u);

  auto source = std::make_shared<Sequence>(0, ch1->output(), 64);
  auto drain = std::make_shared<Collect>(ch2->input(), sink);
  std::jthread src{[&] { source->run(); }};
  drain->run();

  ASSERT_EQ(sink->size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(sink->values()[i], i);
}

TEST(ComputeServer, RejectsCorruptShipment) {
  ComputeServer server{"corrupt"};
  auto stream = net::default_transport().dial("127.0.0.1", server.port(), {});
  io::DataOutputStream out{std::make_shared<net::StreamOutput>(stream)};
  io::DataInputStream in{std::make_shared<net::StreamInput>(stream)};
  out.write_u8(1);  // kRunProcess
  const ByteVector junk{9, 9, 9};
  out.write_bytes({junk.data(), junk.size()});
  EXPECT_FALSE(in.read_bool());
  EXPECT_FALSE(in.read_string().empty());
}

}  // namespace
}  // namespace dpn::rmi
