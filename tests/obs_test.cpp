#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/channel.hpp"
#include "core/network.hpp"
#include "core/process.hpp"
#include "io/data.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "rmi/compute_server.hpp"

namespace dpn::obs {
namespace {

using core::Channel;
using core::ChannelOptions;
using core::Network;
using processes::Collect;
using processes::CollectSink;
using processes::Identity;
using processes::Sequence;

// --- ChannelMetrics ---------------------------------------------------------

TEST(Metrics, CountsBytesAndTokensPerEndpointCall) {
  Channel channel{64};
  const std::uint8_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (int i = 0; i < 3; ++i) channel.output()->write({payload, 8});

  std::uint8_t sink[8];
  for (int i = 0; i < 3; ++i) channel.input()->read_fully({sink, 8});

  const ChannelSnapshot snap = core::snapshot_channel(*channel.state());
  EXPECT_EQ(snap.bytes_written, 24u);
  EXPECT_EQ(snap.tokens_written, 3u);
  EXPECT_EQ(snap.bytes_read, 24u);
  EXPECT_EQ(snap.tokens_read, 3u);
}

TEST(Metrics, BufferedAndWriteThroughAgreeOnTotals) {
  // The counters live *above* the endpoint buffering, so the observable
  // traffic of the same token stream must not drift with the transport
  // configuration (zero-drift: ops teams compare these numbers across
  // differently tuned deployments).
  auto run_stream = [](ChannelOptions options) {
    Channel channel{std::move(options)};
    std::jthread producer{[&] {
      io::DataOutputStream out{channel.output()};
      for (std::int64_t i = 0; i < 100; ++i) out.write_i64(i);
      channel.output()->close();
    }};
    io::DataInputStream in{channel.input()};
    for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(in.read_i64(), i);
    producer.join();
    return core::snapshot_channel(*channel.state());
  };

  const ChannelSnapshot plain = run_stream({.capacity = 256});
  const ChannelSnapshot buffered = run_stream(
      {.capacity = 256, .write_buffer = 64, .read_buffer = 64});

  EXPECT_EQ(plain.bytes_written, 800u);
  EXPECT_EQ(buffered.bytes_written, plain.bytes_written);
  EXPECT_EQ(buffered.tokens_written, plain.tokens_written);
  EXPECT_EQ(buffered.bytes_read, plain.bytes_read);
  EXPECT_EQ(buffered.tokens_read, plain.tokens_read);
  // Only the *transport* behaviour differs: the buffered endpoint drained
  // in coalesced flushes.
  EXPECT_GT(buffered.flushes, 0u);
  EXPECT_GT(buffered.coalesced_writes, 0u);
  EXPECT_EQ(plain.flushes, 0u);
}

TEST(Metrics, BlockedTimeAndHighWaterMarkUnderBackpressure) {
  Channel channel{ChannelOptions{.capacity = 16, .label = "tiny"}};
  std::jthread producer{[&] {
    io::DataOutputStream out{channel.output()};
    for (std::int64_t i = 0; i < 16; ++i) out.write_i64(i);  // 128 B > 16
    channel.output()->close();
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds{20});
  io::DataInputStream in{channel.input()};
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_EQ(in.read_i64(), i);
  producer.join();

  const ChannelSnapshot snap = core::snapshot_channel(*channel.state());
  EXPECT_GT(snap.blocked_write_ns, 0u);
  EXPECT_GT(snap.occupancy_hwm, 0u);
  EXPECT_LE(snap.occupancy_hwm, 16u);
  EXPECT_GT(snap.writer_wakeups, 0u);
}

// --- Network::snapshot ------------------------------------------------------

TEST(Snapshot, ReflectsCompletedRun) {
  Network network;
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.connect(
      [&](auto out) { return std::make_shared<Sequence>(0, out, 64); },
      [&](auto in) { return std::make_shared<Collect>(in, sink); },
      {.capacity = 256, .label = "nums"});
  network.run();

  const NetworkSnapshot snap = network.snapshot();
  EXPECT_EQ(snap.live, 0u);
  ASSERT_EQ(snap.processes.size(), 2u);
  for (const ProcessSnapshot& p : snap.processes) {
    EXPECT_EQ(p.state, ProcessState::kFinished) << p.name;
    EXPECT_GT(p.steps, 0u) << p.name;
  }
  ASSERT_EQ(snap.channels.size(), 1u);
  const ChannelSnapshot& c = snap.channels[0];
  EXPECT_EQ(c.label, "nums");
  EXPECT_EQ(c.bytes_written, 64u * 8u);
  EXPECT_EQ(c.bytes_read, 64u * 8u);
  EXPECT_EQ(c.tokens_written, c.tokens_read);
  EXPECT_TRUE(c.write_closed);
  // And the human rendering mentions the channel.
  EXPECT_NE(snap.to_string().find("nums"), std::string::npos);
}

TEST(Snapshot, EncodeDecodeRoundTrip) {
  NetworkSnapshot snap;
  snap.live = 3;
  snap.outcome = 1;
  snap.growth_events = 2;
  snap.remote_bytes_sent = 11111;
  snap.remote_bytes_received = 22222;
  snap.processes.push_back({"alpha", ProcessState::kBlockedReading, 42});
  snap.processes.push_back({"beta", ProcessState::kFinished, 7});
  ChannelSnapshot c;
  c.id = 99;
  c.label = "wire";
  c.has_pipe = true;
  c.input_remote = true;
  c.write_closed = true;
  c.capacity = 4096;
  c.buffered = 128;
  c.occupancy_hwm = 512;
  c.bytes_written = 1000;
  c.tokens_written = 125;
  c.bytes_read = 872;
  c.tokens_read = 109;
  c.blocked_read_ns = 1234567;
  c.reader_wakeups = 55;
  c.blocked_readers = 1;
  c.flushes = 9;
  c.coalesced_writes = 90;
  c.write_buffered = 16;
  snap.channels.push_back(c);

  const ByteVector bytes = snap.encode();
  const NetworkSnapshot copy = NetworkSnapshot::decode({bytes.data(),
                                                        bytes.size()});
  EXPECT_EQ(copy.live, 3u);
  EXPECT_EQ(copy.outcome, 1);
  EXPECT_EQ(copy.growth_events, 2u);
  EXPECT_EQ(copy.remote_bytes_sent, 11111u);
  EXPECT_EQ(copy.remote_bytes_received, 22222u);
  ASSERT_EQ(copy.processes.size(), 2u);
  EXPECT_EQ(copy.processes[0].name, "alpha");
  EXPECT_EQ(copy.processes[0].state, ProcessState::kBlockedReading);
  EXPECT_EQ(copy.processes[0].steps, 42u);
  EXPECT_EQ(copy.processes[1].name, "beta");
  ASSERT_EQ(copy.channels.size(), 1u);
  const ChannelSnapshot& d = copy.channels[0];
  EXPECT_EQ(d.id, 99u);
  EXPECT_EQ(d.label, "wire");
  EXPECT_TRUE(d.has_pipe);
  EXPECT_TRUE(d.input_remote);
  EXPECT_FALSE(d.output_remote);
  EXPECT_TRUE(d.write_closed);
  EXPECT_EQ(d.capacity, 4096u);
  EXPECT_EQ(d.buffered, 128u);
  EXPECT_EQ(d.occupancy_hwm, 512u);
  EXPECT_EQ(d.bytes_written, 1000u);
  EXPECT_EQ(d.tokens_written, 125u);
  EXPECT_EQ(d.bytes_read, 872u);
  EXPECT_EQ(d.tokens_read, 109u);
  EXPECT_EQ(d.blocked_read_ns, 1234567u);
  EXPECT_EQ(d.reader_wakeups, 55u);
  EXPECT_EQ(d.blocked_readers, 1u);
  EXPECT_EQ(d.flushes, 9u);
  EXPECT_EQ(d.coalesced_writes, 90u);
  EXPECT_EQ(d.write_buffered, 16u);
}

// --- apply_growth: growth needs live evidence -------------------------------

/// Consumer that holds its channel untouched until the test opens the
/// gate, so the producer is observably write-blocked for as long as the
/// test needs.
class GatedDrain final : public core::IterativeProcess {
 public:
  GatedDrain(std::shared_ptr<core::ChannelInputStream> in,
             std::shared_ptr<std::atomic<bool>> gate)
      : IterativeProcess(1), gate_(std::move(gate)) {
    track_input(std::move(in));
  }

  std::string type_name() const override { return "test.GatedDrain"; }
  void write_fields(serial::ObjectOutputStream&) const override {}

 protected:
  void step() override {
    while (!gate_->load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds{1});
    }
    io::DataInputStream in{input(0)};
    for (;;) in.read_i64();  // until EndOfStream stops the process
  }

 private:
  std::shared_ptr<std::atomic<bool>> gate_;
};

TEST(Snapshot, GrowthIsRefusedOnStaleStallEvidence) {
  // Regression for the monitor poll-vs-exit race: a stall snapshot taken
  // while the network was genuinely wedged must not justify growth after
  // the network has moved on (phantom growth after process exit).
  Network network;
  auto gate = std::make_shared<std::atomic<bool>>(false);
  auto channel = network.make_channel({.capacity = 16, .label = "tiny"});
  network.add(std::make_shared<Sequence>(0, channel->output(), 16));
  network.add(std::make_shared<GatedDrain>(channel->input(), gate));
  network.start();

  // Wait for the producer to be observably write-blocked.
  NetworkSnapshot stall;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{10};
  for (;;) {
    stall = network.snapshot();
    if (stall.has_write_blocked()) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "producer never blocked";
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  ASSERT_NE(stall.smallest_write_blocked(), nullptr);
  EXPECT_EQ(stall.smallest_write_blocked()->label, "tiny");

  // Live evidence: the same snapshot justifies growth right now.
  EXPECT_TRUE(network.apply_growth(stall));
  EXPECT_EQ(network.snapshot().channels[0].capacity, 32u);

  gate->store(true);
  network.join();
  EXPECT_EQ(network.live_processes(), 0u);

  // Stale evidence: the old stall snapshot no longer describes reality.
  EXPECT_FALSE(network.apply_growth(stall));
  EXPECT_EQ(network.snapshot().channels[0].capacity, 32u);
}

// --- Tracer -----------------------------------------------------------------

TEST(Tracer, RingKeepsNewestOnWraparound) {
  Tracer& tracer = Tracer::instance();
  tracer.enable(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    tracer.record(TraceKind::kTaskDispatch, "wrap", i);
  }
  tracer.disable();

  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.capacity(), 8u);
  const std::vector<TraceEvent> events = tracer.drain();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg0, 12 + i);  // oldest survivor first
    EXPECT_STREQ(events[i].name, "wrap");
  }

  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("par.dispatch"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"wrap\""), std::string::npos);
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer& tracer = Tracer::instance();
  tracer.enable(8);
  tracer.record(TraceKind::kChannelWrite, "live", 1);
  tracer.disable();
  tracer.record(TraceKind::kChannelWrite, "dead", 2);
  EXPECT_EQ(tracer.recorded(), 1u);
  EXPECT_FALSE(trace_enabled());
}

TEST(Tracer, ChannelOperationsLandInTheRing) {
  Tracer& tracer = Tracer::instance();
  tracer.enable(64);
  {
    Channel channel{ChannelOptions{.capacity = 64, .label = "traced"}};
    io::DataOutputStream out{channel.output()};
    io::DataInputStream in{channel.input()};
    out.write_i64(5);
    EXPECT_EQ(in.read_i64(), 5);
    channel.output()->close();
  }
  tracer.disable();

  bool saw_write = false;
  bool saw_read = false;
  bool saw_close = false;
  for (const TraceEvent& event : tracer.drain()) {
    if (std::string_view{event.name} != "traced") continue;
    saw_write |= event.kind == TraceKind::kChannelWrite;
    saw_read |= event.kind == TraceKind::kChannelRead;
    saw_close |= event.kind == TraceKind::kChannelClose;
  }
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(saw_read);
  EXPECT_TRUE(saw_close);
}

// --- STATS over the wire ----------------------------------------------------

TEST(Stats, RemoteRoundTripSeesHostedGraph) {
  auto client_node = dist::NodeContext::create();
  rmi::ComputeServer server{"stats-host"};

  auto ch1 = std::make_shared<Channel>(256, "in");
  auto ch2 = std::make_shared<Channel>(256, "out");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto middle = std::make_shared<Identity>(ch1->input(), ch2->output());

  rmi::ServerHandle handle{rmi::Endpoint{"127.0.0.1", server.port()},
                           client_node};
  rmi::ProcessHandle hosted = handle.submit(middle);
  ASSERT_TRUE(hosted.valid());

  auto source = std::make_shared<Sequence>(0, ch1->output(), 32);
  auto drain = std::make_shared<Collect>(ch2->input(), sink);
  std::jthread src{[&] { source->run(); }};
  drain->run();
  ASSERT_EQ(sink->size(), 32u);

  hosted.join();  // the graph has terminated; join must not block

  // The STATS reply decodes into the server's view of the hosted graph:
  // the Identity process (finished, with steps) and its two reconnected
  // channel endpoints, which carried 32 tokens each way.
  const NetworkSnapshot snap = handle.stats();
  EXPECT_EQ(snap.live, 0u);
  ASSERT_EQ(snap.processes.size(), 1u);
  EXPECT_EQ(snap.processes[0].state, ProcessState::kFinished);
  EXPECT_GT(snap.processes[0].steps, 0u);
  ASSERT_EQ(snap.channels.size(), 2u);
  // Identity is a byte copy (read_some chunks), so token counts depend on
  // arrival batching; the byte totals are exact: 32 i64s each way.
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  for (const ChannelSnapshot& c : snap.channels) {
    bytes_in += c.bytes_read;
    bytes_out += c.bytes_written;
  }
  EXPECT_EQ(bytes_in, 32u * 8u);   // the shipped input endpoint's reads
  EXPECT_EQ(bytes_out, 32u * 8u);  // the shipped output endpoint's writes
  // Both directions crossed this node's sockets.
  EXPECT_GT(snap.remote_bytes_sent, 0u);
  EXPECT_GT(snap.remote_bytes_received, 0u);

  std::vector<rmi::ServerHandle> fleet{handle};
  const NetworkSnapshot merged = rmi::fleet_stats(fleet);
  EXPECT_EQ(merged.processes.size(), 1u);
  EXPECT_EQ(merged.remote_bytes_sent, snap.remote_bytes_sent);
}

TEST(Stats, AbortUnblocksHostedProcess) {
  auto client_node = dist::NodeContext::create();
  rmi::ComputeServer server{"abort-host"};

  // Host an Identity that will never receive data: it parks in a blocking
  // read on the server until abort() closes its endpoints.
  auto ch1 = std::make_shared<Channel>(64, "silent-in");
  auto ch2 = std::make_shared<Channel>(64, "silent-out");
  auto middle = std::make_shared<Identity>(ch1->input(), ch2->output());

  rmi::ServerHandle handle{rmi::Endpoint{"127.0.0.1", server.port()},
                           client_node};
  rmi::ProcessHandle hosted = handle.submit(middle);
  ASSERT_TRUE(hosted.valid());

  hosted.abort();
  hosted.join();  // must return: close propagated end-of-stream
  EXPECT_EQ(handle.stats().live, 0u);
}

}  // namespace
}  // namespace dpn::obs
