#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>

#include "cluster/cluster.hpp"
#include "core/channel.hpp"
#include "core/network.hpp"
#include "core/process.hpp"
#include "factor/factor.hpp"
#include "io/data.hpp"
#include "io/memory.hpp"
#include "net/frames.hpp"
#include "obs/prometheus.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "par/schema.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "processes/router.hpp"
#include "rmi/compute_server.hpp"
#include "rmi/telemetry.hpp"
#include "support/histogram.hpp"

namespace dpn::obs {
namespace {

using core::Channel;
using core::ChannelOptions;
using core::Network;
using processes::Collect;
using processes::CollectSink;
using processes::Identity;
using processes::Sequence;

// --- ChannelMetrics ---------------------------------------------------------

TEST(Metrics, CountsBytesAndTokensPerEndpointCall) {
  Channel channel{64};
  const std::uint8_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (int i = 0; i < 3; ++i) channel.output()->write({payload, 8});

  std::uint8_t sink[8];
  for (int i = 0; i < 3; ++i) channel.input()->read_fully({sink, 8});

  const ChannelSnapshot snap = core::snapshot_channel(*channel.state());
  EXPECT_EQ(snap.bytes_written, 24u);
  EXPECT_EQ(snap.tokens_written, 3u);
  EXPECT_EQ(snap.bytes_read, 24u);
  EXPECT_EQ(snap.tokens_read, 3u);
}

TEST(Metrics, BufferedAndWriteThroughAgreeOnTotals) {
  // The counters live *above* the endpoint buffering, so the observable
  // traffic of the same token stream must not drift with the transport
  // configuration (zero-drift: ops teams compare these numbers across
  // differently tuned deployments).
  auto run_stream = [](ChannelOptions options) {
    Channel channel{std::move(options)};
    std::jthread producer{[&] {
      io::DataOutputStream out{channel.output()};
      for (std::int64_t i = 0; i < 100; ++i) out.write_i64(i);
      channel.output()->close();
    }};
    io::DataInputStream in{channel.input()};
    for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(in.read_i64(), i);
    producer.join();
    return core::snapshot_channel(*channel.state());
  };

  const ChannelSnapshot plain = run_stream({.capacity = 256});
  const ChannelSnapshot buffered = run_stream(
      {.capacity = 256, .write_buffer = 64, .read_buffer = 64});

  EXPECT_EQ(plain.bytes_written, 800u);
  EXPECT_EQ(buffered.bytes_written, plain.bytes_written);
  EXPECT_EQ(buffered.tokens_written, plain.tokens_written);
  EXPECT_EQ(buffered.bytes_read, plain.bytes_read);
  EXPECT_EQ(buffered.tokens_read, plain.tokens_read);
  // Only the *transport* behaviour differs: the buffered endpoint drained
  // in coalesced flushes.
  EXPECT_GT(buffered.flushes, 0u);
  EXPECT_GT(buffered.coalesced_writes, 0u);
  EXPECT_EQ(plain.flushes, 0u);
}

TEST(Metrics, BlockedTimeAndHighWaterMarkUnderBackpressure) {
  Channel channel{ChannelOptions{.capacity = 16, .label = "tiny"}};
  std::jthread producer{[&] {
    io::DataOutputStream out{channel.output()};
    for (std::int64_t i = 0; i < 16; ++i) out.write_i64(i);  // 128 B > 16
    channel.output()->close();
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds{20});
  io::DataInputStream in{channel.input()};
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_EQ(in.read_i64(), i);
  producer.join();

  const ChannelSnapshot snap = core::snapshot_channel(*channel.state());
  EXPECT_GT(snap.blocked_write_ns, 0u);
  EXPECT_GT(snap.occupancy_hwm, 0u);
  EXPECT_LE(snap.occupancy_hwm, 16u);
  EXPECT_GT(snap.writer_wakeups, 0u);
}

// --- Network::snapshot ------------------------------------------------------

TEST(Snapshot, ReflectsCompletedRun) {
  Network network;
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.connect(
      [&](auto out) { return std::make_shared<Sequence>(0, out, 64); },
      [&](auto in) { return std::make_shared<Collect>(in, sink); },
      {.capacity = 256, .label = "nums"});
  network.run();

  const NetworkSnapshot snap = network.snapshot();
  EXPECT_EQ(snap.live, 0u);
  ASSERT_EQ(snap.processes.size(), 2u);
  for (const ProcessSnapshot& p : snap.processes) {
    EXPECT_EQ(p.state, ProcessState::kFinished) << p.name;
    EXPECT_GT(p.steps, 0u) << p.name;
  }
  ASSERT_EQ(snap.channels.size(), 1u);
  const ChannelSnapshot& c = snap.channels[0];
  EXPECT_EQ(c.label, "nums");
  EXPECT_EQ(c.bytes_written, 64u * 8u);
  EXPECT_EQ(c.bytes_read, 64u * 8u);
  EXPECT_EQ(c.tokens_written, c.tokens_read);
  EXPECT_TRUE(c.write_closed);
  // And the human rendering mentions the channel.
  EXPECT_NE(snap.to_string().find("nums"), std::string::npos);
}

TEST(Snapshot, EncodeDecodeRoundTrip) {
  NetworkSnapshot snap;
  snap.live = 3;
  snap.outcome = 1;
  snap.growth_events = 2;
  snap.remote_bytes_sent = 11111;
  snap.remote_bytes_received = 22222;
  snap.processes.push_back({"alpha", ProcessState::kBlockedReading, 42});
  snap.processes.push_back({"beta", ProcessState::kFinished, 7});
  ChannelSnapshot c;
  c.id = 99;
  c.label = "wire";
  c.has_pipe = true;
  c.input_remote = true;
  c.write_closed = true;
  c.capacity = 4096;
  c.buffered = 128;
  c.occupancy_hwm = 512;
  c.bytes_written = 1000;
  c.tokens_written = 125;
  c.bytes_read = 872;
  c.tokens_read = 109;
  c.blocked_read_ns = 1234567;
  c.reader_wakeups = 55;
  c.blocked_readers = 1;
  c.flushes = 9;
  c.coalesced_writes = 90;
  c.write_buffered = 16;
  snap.channels.push_back(c);

  const ByteVector bytes = snap.encode();
  const NetworkSnapshot copy = NetworkSnapshot::decode({bytes.data(),
                                                        bytes.size()});
  EXPECT_EQ(copy.live, 3u);
  EXPECT_EQ(copy.outcome, 1);
  EXPECT_EQ(copy.growth_events, 2u);
  EXPECT_EQ(copy.remote_bytes_sent, 11111u);
  EXPECT_EQ(copy.remote_bytes_received, 22222u);
  ASSERT_EQ(copy.processes.size(), 2u);
  EXPECT_EQ(copy.processes[0].name, "alpha");
  EXPECT_EQ(copy.processes[0].state, ProcessState::kBlockedReading);
  EXPECT_EQ(copy.processes[0].steps, 42u);
  EXPECT_EQ(copy.processes[1].name, "beta");
  ASSERT_EQ(copy.channels.size(), 1u);
  const ChannelSnapshot& d = copy.channels[0];
  EXPECT_EQ(d.id, 99u);
  EXPECT_EQ(d.label, "wire");
  EXPECT_TRUE(d.has_pipe);
  EXPECT_TRUE(d.input_remote);
  EXPECT_FALSE(d.output_remote);
  EXPECT_TRUE(d.write_closed);
  EXPECT_EQ(d.capacity, 4096u);
  EXPECT_EQ(d.buffered, 128u);
  EXPECT_EQ(d.occupancy_hwm, 512u);
  EXPECT_EQ(d.bytes_written, 1000u);
  EXPECT_EQ(d.tokens_written, 125u);
  EXPECT_EQ(d.bytes_read, 872u);
  EXPECT_EQ(d.tokens_read, 109u);
  EXPECT_EQ(d.blocked_read_ns, 1234567u);
  EXPECT_EQ(d.reader_wakeups, 55u);
  EXPECT_EQ(d.blocked_readers, 1u);
  EXPECT_EQ(d.flushes, 9u);
  EXPECT_EQ(d.coalesced_writes, 90u);
  EXPECT_EQ(d.write_buffered, 16u);
}

// --- apply_growth: growth needs live evidence -------------------------------

/// Consumer that holds its channel untouched until the test opens the
/// gate, so the producer is observably write-blocked for as long as the
/// test needs.
class GatedDrain final : public core::IterativeProcess {
 public:
  GatedDrain(std::shared_ptr<core::ChannelInputStream> in,
             std::shared_ptr<std::atomic<bool>> gate)
      : IterativeProcess(1), gate_(std::move(gate)) {
    track_input(std::move(in));
  }

  std::string type_name() const override { return "test.GatedDrain"; }
  void write_fields(serial::ObjectOutputStream&) const override {}

 protected:
  void step() override {
    while (!gate_->load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds{1});
    }
    io::DataInputStream in{input(0)};
    for (;;) in.read_i64();  // until EndOfStream stops the process
  }

 private:
  std::shared_ptr<std::atomic<bool>> gate_;
};

TEST(Snapshot, GrowthIsRefusedOnStaleStallEvidence) {
  // Regression for the monitor poll-vs-exit race: a stall snapshot taken
  // while the network was genuinely wedged must not justify growth after
  // the network has moved on (phantom growth after process exit).
  Network network;
  auto gate = std::make_shared<std::atomic<bool>>(false);
  auto channel = network.make_channel({.capacity = 16, .label = "tiny"});
  network.add(std::make_shared<Sequence>(0, channel->output(), 16));
  network.add(std::make_shared<GatedDrain>(channel->input(), gate));
  network.start();

  // Wait for the producer to be observably write-blocked.
  NetworkSnapshot stall;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{10};
  for (;;) {
    stall = network.snapshot();
    if (stall.has_write_blocked()) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "producer never blocked";
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  ASSERT_NE(stall.smallest_write_blocked(), nullptr);
  EXPECT_EQ(stall.smallest_write_blocked()->label, "tiny");

  // Live evidence: the same snapshot justifies growth right now.
  EXPECT_TRUE(network.apply_growth(stall));
  EXPECT_EQ(network.snapshot().channels[0].capacity, 32u);

  gate->store(true);
  network.join();
  EXPECT_EQ(network.live_processes(), 0u);

  // Stale evidence: the old stall snapshot no longer describes reality.
  EXPECT_FALSE(network.apply_growth(stall));
  EXPECT_EQ(network.snapshot().channels[0].capacity, 32u);
}

// --- Tracer -----------------------------------------------------------------

TEST(Tracer, RingKeepsNewestOnWraparound) {
  Tracer& tracer = Tracer::instance();
  tracer.enable(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    tracer.record(TraceKind::kTaskDispatch, "wrap", i);
  }
  tracer.disable();

  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.capacity(), 8u);
  const std::vector<TraceEvent> events = tracer.drain();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg0, 12 + i);  // oldest survivor first
    EXPECT_STREQ(events[i].name, "wrap");
  }

  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("par.dispatch"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"wrap\""), std::string::npos);
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer& tracer = Tracer::instance();
  tracer.enable(8);
  tracer.record(TraceKind::kChannelWrite, "live", 1);
  tracer.disable();
  tracer.record(TraceKind::kChannelWrite, "dead", 2);
  EXPECT_EQ(tracer.recorded(), 1u);
  EXPECT_FALSE(trace_enabled());
}

TEST(Tracer, ChannelOperationsLandInTheRing) {
  Tracer& tracer = Tracer::instance();
  tracer.enable(64);
  {
    Channel channel{ChannelOptions{.capacity = 64, .label = "traced"}};
    io::DataOutputStream out{channel.output()};
    io::DataInputStream in{channel.input()};
    out.write_i64(5);
    EXPECT_EQ(in.read_i64(), 5);
    channel.output()->close();
  }
  tracer.disable();

  bool saw_write = false;
  bool saw_read = false;
  bool saw_close = false;
  for (const TraceEvent& event : tracer.drain()) {
    if (std::string_view{event.name} != "traced") continue;
    saw_write |= event.kind == TraceKind::kChannelWrite;
    saw_read |= event.kind == TraceKind::kChannelRead;
    saw_close |= event.kind == TraceKind::kChannelClose;
  }
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(saw_read);
  EXPECT_TRUE(saw_close);
}

// --- STATS over the wire ----------------------------------------------------

TEST(Stats, RemoteRoundTripSeesHostedGraph) {
  auto client_node = dist::NodeContext::create();
  rmi::ComputeServer server{"stats-host"};

  auto ch1 = std::make_shared<Channel>(256, "in");
  auto ch2 = std::make_shared<Channel>(256, "out");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto middle = std::make_shared<Identity>(ch1->input(), ch2->output());

  rmi::ServerHandle handle{rmi::Endpoint{"127.0.0.1", server.port()},
                           client_node};
  rmi::ProcessHandle hosted = handle.submit(middle);
  ASSERT_TRUE(hosted.valid());

  auto source = std::make_shared<Sequence>(0, ch1->output(), 32);
  auto drain = std::make_shared<Collect>(ch2->input(), sink);
  std::jthread src{[&] { source->run(); }};
  drain->run();
  ASSERT_EQ(sink->size(), 32u);

  hosted.join();  // the graph has terminated; join must not block

  // The STATS reply decodes into the server's view of the hosted graph:
  // the Identity process (finished, with steps) and its two reconnected
  // channel endpoints, which carried 32 tokens each way.
  const NetworkSnapshot snap = handle.stats();
  EXPECT_EQ(snap.live, 0u);
  ASSERT_EQ(snap.processes.size(), 1u);
  EXPECT_EQ(snap.processes[0].state, ProcessState::kFinished);
  EXPECT_GT(snap.processes[0].steps, 0u);
  ASSERT_EQ(snap.channels.size(), 2u);
  // Identity is a byte copy (read_some chunks), so token counts depend on
  // arrival batching; the byte totals are exact: 32 i64s each way.
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  for (const ChannelSnapshot& c : snap.channels) {
    bytes_in += c.bytes_read;
    bytes_out += c.bytes_written;
  }
  EXPECT_EQ(bytes_in, 32u * 8u);   // the shipped input endpoint's reads
  EXPECT_EQ(bytes_out, 32u * 8u);  // the shipped output endpoint's writes
  // Both directions crossed this node's sockets.
  EXPECT_GT(snap.remote_bytes_sent, 0u);
  EXPECT_GT(snap.remote_bytes_received, 0u);

  std::vector<rmi::ServerHandle> fleet{handle};
  const NetworkSnapshot merged = rmi::fleet_stats(fleet);
  EXPECT_EQ(merged.processes.size(), 1u);
  EXPECT_EQ(merged.remote_bytes_sent, snap.remote_bytes_sent);
}

TEST(Stats, AbortUnblocksHostedProcess) {
  auto client_node = dist::NodeContext::create();
  rmi::ComputeServer server{"abort-host"};

  // Host an Identity that will never receive data: it parks in a blocking
  // read on the server until abort() closes its endpoints.
  auto ch1 = std::make_shared<Channel>(64, "silent-in");
  auto ch2 = std::make_shared<Channel>(64, "silent-out");
  auto middle = std::make_shared<Identity>(ch1->input(), ch2->output());

  rmi::ServerHandle handle{rmi::Endpoint{"127.0.0.1", server.port()},
                           client_node};
  rmi::ProcessHandle hosted = handle.submit(middle);
  ASSERT_TRUE(hosted.valid());

  hosted.abort();
  hosted.join();  // must return: close propagated end-of-stream
  EXPECT_EQ(handle.stats().live, 0u);
}

// --- Latency histograms (obs v2) --------------------------------------------

TEST(Histogram, BucketLayoutCoversSubMicrosecondToSeconds) {
  EXPECT_EQ(HistogramSnapshot::bucket_of(0), 0u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(999), 0u);     // < 1us
  EXPECT_EQ(HistogramSnapshot::bucket_of(1000), 1u);    // [1us, 2us)
  EXPECT_EQ(HistogramSnapshot::bucket_of(1999), 1u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(2000), 2u);    // [2us, 4us)
  EXPECT_EQ(HistogramSnapshot::bucket_of(1000000), 10u);  // 1ms
  // Anything beyond the table clamps into the open-ended last bucket.
  EXPECT_EQ(HistogramSnapshot::bucket_of(~std::uint64_t{0}),
            HistogramSnapshot::kBuckets - 1);
  EXPECT_EQ(HistogramSnapshot::bucket_bound_ns(0), 1000u);
  EXPECT_EQ(HistogramSnapshot::bucket_bound_ns(1), 2000u);
  EXPECT_EQ(HistogramSnapshot::bucket_bound_ns(10), 1024u * 1000u);
}

TEST(Histogram, RecordSnapshotPercentilesAndMerge) {
  LatencyHistogram hist;
  for (int i = 0; i < 90; ++i) hist.record(500);        // bucket 0
  for (int i = 0; i < 9; ++i) hist.record_shared(3000);  // bucket 2
  hist.record(50'000'000);                               // 50ms

  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum_ns, 90u * 500u + 9u * 3000u + 50'000'000u);
  EXPECT_EQ(snap.p50_ns(), 1000u);   // inside bucket 0
  EXPECT_EQ(snap.p95_ns(), 4000u);   // inside bucket 2
  EXPECT_GT(snap.percentile_ns(0.999), 4000u);  // the 50ms outlier

  HistogramSnapshot other = snap;
  other.merge(snap);
  EXPECT_EQ(other.count, 200u);
  EXPECT_EQ(other.counts[0], 180u);
  EXPECT_EQ(other.sum_ns, 2 * snap.sum_ns);

  const HistogramSnapshot empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.percentile_ns(0.99), 0u);
}

TEST(Histogram, PipeRecordsWaitDistributionUnderBackpressure) {
  Channel channel{ChannelOptions{.capacity = 16, .label = "shaped"}};
  std::jthread producer{[&] {
    io::DataOutputStream out{channel.output()};
    for (std::int64_t i = 0; i < 16; ++i) out.write_i64(i);  // 128 B > 16
    channel.output()->close();
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds{20});
  io::DataInputStream in{channel.input()};
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_EQ(in.read_i64(), i);
  producer.join();

  const ChannelSnapshot snap = core::snapshot_channel(*channel.state());
  // The scalar total and the histogram describe the same waits.
  ASSERT_GT(snap.write_block.count, 0u);
  EXPECT_EQ(snap.write_block.sum_ns, snap.blocked_write_ns);
  EXPECT_GT(snap.write_block.p95_ns(), 0u);
}

// --- NetworkSnapshot v3 + version compat matrix -----------------------------

NetworkSnapshot make_v3_sample() {
  NetworkSnapshot snap;
  snap.live = 1;
  snap.growth_events = 4;
  snap.connect_retries = 2;
  snap.faults_injected = 6;
  snap.trace_recorded = 1000;
  snap.trace_dropped = 24;
  for (int i = 0; i < 50; ++i) snap.task_rtt.counts[3] += 1;
  snap.task_rtt.count = 50;
  snap.task_rtt.sum_ns = 300000;
  snap.connect_latency.counts[11] = 7;
  snap.connect_latency.count = 7;
  snap.connect_latency.sum_ns = 7'000'000;
  snap.sched_workers = 2;       // v4 fields
  snap.sched_spawned = 40;
  snap.sched_completed = 40;
  snap.sched_steals = 11;
  snap.sched_dispatches = 95;
  snap.sched_parks = 3;
  snap.mux_connections = 3;     // v5 fields
  snap.mux_streams_active = 128;
  snap.mux_streams_total = 500;
  snap.mux_credit_stalls = 17;
  snap.mux_credit_stall_ns = 9'000'000;
  ChannelSnapshot c;
  c.id = 5;
  c.label = "v3";
  c.blocked_write_ns = 12345;
  c.write_block.counts[4] = 3;
  c.write_block.count = 3;
  c.write_block.sum_ns = 12345;
  c.read_block.counts[0] = 1;
  c.read_block.count = 1;
  c.read_block.sum_ns = 10;
  snap.channels.push_back(c);
  snap.processes.push_back({"p", ProcessState::kRunning, 9});
  return snap;
}

TEST(SnapshotV3, TraceCountersAndHistogramsRoundTrip) {
  const NetworkSnapshot snap = make_v3_sample();
  const ByteVector bytes = snap.encode();
  const NetworkSnapshot copy =
      NetworkSnapshot::decode({bytes.data(), bytes.size()});
  EXPECT_EQ(copy.version, NetworkSnapshot::kVersion);
  EXPECT_EQ(copy.trace_recorded, 1000u);
  EXPECT_EQ(copy.trace_dropped, 24u);
  EXPECT_EQ(copy.task_rtt.count, 50u);
  EXPECT_EQ(copy.task_rtt.counts[3], 50u);
  EXPECT_EQ(copy.task_rtt.sum_ns, 300000u);
  EXPECT_EQ(copy.connect_latency.count, 7u);
  ASSERT_EQ(copy.channels.size(), 1u);
  EXPECT_EQ(copy.channels[0].write_block.count, 3u);
  EXPECT_EQ(copy.channels[0].write_block.counts[4], 3u);
  EXPECT_EQ(copy.channels[0].read_block.count, 1u);
  // v4 scheduler counters round-trip too.
  EXPECT_EQ(copy.sched_workers, 2u);
  EXPECT_EQ(copy.sched_steals, 11u);
  EXPECT_EQ(copy.sched_dispatches, 95u);
  // ...and the v5 mux transport counters.
  EXPECT_EQ(copy.mux_connections, 3u);
  EXPECT_EQ(copy.mux_streams_active, 128u);
  EXPECT_EQ(copy.mux_streams_total, 500u);
  EXPECT_EQ(copy.mux_credit_stalls, 17u);
  EXPECT_EQ(copy.mux_credit_stall_ns, 9'000'000u);
  // The rendering includes the new percentile lines.
  EXPECT_NE(copy.to_string().find("task rtt"), std::string::npos);
  EXPECT_NE(copy.to_string().find("trace: recorded=1000"), std::string::npos);
  EXPECT_NE(copy.to_string().find("sched: workers=2"), std::string::npos);
  EXPECT_NE(copy.to_string().find("mux: connections=3"), std::string::npos);
}

TEST(SnapshotCompat, V3ReaderAcceptsOldWriters) {
  const NetworkSnapshot snap = make_v3_sample();
  // A v1 writer never wrote fault counters or histograms.
  const ByteVector v1 = snap.encode_as(1);
  const NetworkSnapshot from_v1 =
      NetworkSnapshot::decode({v1.data(), v1.size()});
  EXPECT_EQ(from_v1.version, 1);
  EXPECT_EQ(from_v1.live, 1u);
  EXPECT_EQ(from_v1.connect_retries, 0u);   // v2 field: default
  EXPECT_EQ(from_v1.trace_recorded, 0u);    // v3 field: default
  EXPECT_TRUE(from_v1.task_rtt.empty());
  ASSERT_EQ(from_v1.channels.size(), 1u);
  EXPECT_EQ(from_v1.channels[0].blocked_write_ns, 12345u);
  EXPECT_TRUE(from_v1.channels[0].write_block.empty());

  const ByteVector v2 = snap.encode_as(2);
  const NetworkSnapshot from_v2 =
      NetworkSnapshot::decode({v2.data(), v2.size()});
  EXPECT_EQ(from_v2.version, 2);
  EXPECT_EQ(from_v2.connect_retries, 2u);   // v2 field present
  EXPECT_EQ(from_v2.faults_injected, 6u);
  EXPECT_EQ(from_v2.trace_recorded, 0u);    // v3 field still default

  const ByteVector v3 = snap.encode_as(3);
  const NetworkSnapshot from_v3 =
      NetworkSnapshot::decode({v3.data(), v3.size()});
  EXPECT_EQ(from_v3.version, 3);
  EXPECT_EQ(from_v3.trace_recorded, 1000u);  // v3 field present
  EXPECT_EQ(from_v3.sched_workers, 0u);      // v4 field: default
  EXPECT_EQ(from_v3.sched_steals, 0u);

  const ByteVector v4 = snap.encode_as(4);
  const NetworkSnapshot from_v4 =
      NetworkSnapshot::decode({v4.data(), v4.size()});
  EXPECT_EQ(from_v4.version, 4);
  EXPECT_EQ(from_v4.sched_steals, 11u);      // v4 field present
  EXPECT_EQ(from_v4.mux_connections, 0u);    // v5 field: default
  EXPECT_EQ(from_v4.mux_credit_stalls, 0u);
}

TEST(SnapshotCompat, OldReaderAcceptsV3Writer) {
  const NetworkSnapshot snap = make_v3_sample();
  const ByteVector v3 = snap.encode();
  // A v1-era reader stops after the fields it knows; the trailing v2+v3
  // bytes are ignored, not an error.
  const NetworkSnapshot v1_view =
      NetworkSnapshot::decode_prefix({v3.data(), v3.size()}, 1);
  EXPECT_EQ(v1_view.version, 1);
  EXPECT_EQ(v1_view.live, 1u);
  EXPECT_EQ(v1_view.growth_events, 4u);
  EXPECT_EQ(v1_view.connect_retries, 0u);
  EXPECT_TRUE(v1_view.task_rtt.empty());
  ASSERT_EQ(v1_view.channels.size(), 1u);
  EXPECT_EQ(v1_view.channels[0].label, "v3");

  const NetworkSnapshot v2_view =
      NetworkSnapshot::decode_prefix({v3.data(), v3.size()}, 2);
  EXPECT_EQ(v2_view.version, 2);
  EXPECT_EQ(v2_view.connect_retries, 2u);
  EXPECT_EQ(v2_view.trace_recorded, 0u);

  const NetworkSnapshot v3_view =
      NetworkSnapshot::decode_prefix({v3.data(), v3.size()}, 3);
  EXPECT_EQ(v3_view.version, 3);
  EXPECT_EQ(v3_view.trace_recorded, 1000u);
  EXPECT_EQ(v3_view.sched_workers, 0u);  // v4 tail ignored by a v3 reader

  const NetworkSnapshot v4_view =
      NetworkSnapshot::decode_prefix({v3.data(), v3.size()}, 4);
  EXPECT_EQ(v4_view.version, 4);
  EXPECT_EQ(v4_view.sched_steals, 11u);
  EXPECT_EQ(v4_view.mux_connections, 0u);  // v5 tail ignored by a v4 reader
}

// The v1 x v5 corners of the compat matrix, explicitly: the oldest
// deployed reader against today's writer and vice versa.
TEST(SnapshotCompat, V1ReaderAcceptsV5Writer) {
  const NetworkSnapshot snap = make_v3_sample();
  const ByteVector v5 = snap.encode();  // kVersion == 5
  const NetworkSnapshot v1_view =
      NetworkSnapshot::decode_prefix({v5.data(), v5.size()}, 1);
  EXPECT_EQ(v1_view.version, 1);
  EXPECT_EQ(v1_view.live, 1u);
  ASSERT_EQ(v1_view.channels.size(), 1u);
  EXPECT_EQ(v1_view.channels[0].label, "v3");
  EXPECT_EQ(v1_view.mux_connections, 0u);  // v5 tail invisible to v1
}

TEST(SnapshotCompat, V5ReaderAcceptsV1Writer) {
  const NetworkSnapshot snap = make_v3_sample();
  const ByteVector v1 = snap.encode_as(1);
  const NetworkSnapshot from_v1 =
      NetworkSnapshot::decode({v1.data(), v1.size()});
  EXPECT_EQ(from_v1.version, 1);
  EXPECT_EQ(from_v1.live, 1u);
  EXPECT_EQ(from_v1.mux_connections, 0u);     // never written: default
  EXPECT_EQ(from_v1.mux_credit_stall_ns, 0u);
}

TEST(SnapshotCompat, FutureVersionDegradesToKnownPrefix) {
  // Synthesize a "v6" payload: today's bytes, a bumped version byte, and
  // trailing fields this build has never heard of.  The append-only rule
  // says we must parse our prefix and ignore the rest.
  const NetworkSnapshot snap = make_v3_sample();
  ByteVector bytes = snap.encode();
  bytes[0] = 6;
  for (int i = 0; i < 13; ++i) bytes.push_back(0xEE);
  const NetworkSnapshot copy =
      NetworkSnapshot::decode({bytes.data(), bytes.size()});
  EXPECT_EQ(copy.version, NetworkSnapshot::kVersion);
  EXPECT_EQ(copy.trace_recorded, 1000u);
  EXPECT_EQ(copy.task_rtt.count, 50u);
  EXPECT_EQ(copy.sched_steals, 11u);       // v4 prefix parsed before the tail
  EXPECT_EQ(copy.mux_connections, 3u);     // v5 prefix too
  ASSERT_EQ(copy.channels.size(), 1u);
  EXPECT_EQ(copy.channels[0].write_block.count, 3u);
}

TEST(SnapshotCompat, MergeTakesCommonDenominatorVersion) {
  NetworkSnapshot fleet = make_v3_sample();
  const ByteVector v1 = make_v3_sample().encode_as(1);
  NetworkSnapshot old_peer = NetworkSnapshot::decode({v1.data(), v1.size()});
  fleet.merge_from(std::move(old_peer));
  EXPECT_EQ(fleet.version, 1);          // fleet degrades to the oldest peer
  EXPECT_EQ(fleet.live, 2u);            // counters still sum
  EXPECT_EQ(fleet.trace_recorded, 1000u);  // v3 side kept its own data
  EXPECT_EQ(fleet.sched_steals, 11u);      // v4 side kept its own data too
  EXPECT_EQ(fleet.mux_connections, 3u);    // and the v5 side
  EXPECT_EQ(fleet.channels.size(), 2u);
}

// --- TraceContext + frame extension -----------------------------------------

TEST(TraceContext, WireRoundTrip) {
  TraceContext ctx;
  ctx.trace_id = 0x0123456789abcdefULL;
  ctx.span_id = 42;
  ctx.flags = TraceContext::kSampled;
  std::uint8_t wire[TraceContext::kWireSize];
  ctx.encode(wire);
  const TraceContext copy = TraceContext::decode(wire);
  EXPECT_EQ(copy.trace_id, ctx.trace_id);
  EXPECT_EQ(copy.span_id, 42u);
  EXPECT_EQ(copy.flags, TraceContext::kSampled);
  EXPECT_TRUE(copy.valid());
  EXPECT_FALSE(TraceContext{}.valid());
}

TEST(Frames, DataTracedCarriesContextPrefix) {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  net::FrameWriter writer{sink};
  TraceContext ctx;
  ctx.trace_id = 7;
  ctx.span_id = 9;
  ctx.flags = TraceContext::kSampled;
  const std::uint8_t payload[4] = {10, 20, 30, 40};
  writer.write_data_traced(ctx, {payload, sizeof payload});

  net::FrameReader reader{
      std::make_shared<io::MemoryInputStream>(sink->take())};
  const net::Frame frame = reader.read_frame();
  EXPECT_EQ(frame.type, net::FrameType::kDataTraced);
  ASSERT_EQ(frame.payload.size(), TraceContext::kWireSize + sizeof payload);
  const TraceContext copy = TraceContext::decode(frame.payload.data());
  EXPECT_EQ(copy.trace_id, 7u);
  EXPECT_EQ(copy.span_id, 9u);
  EXPECT_EQ(frame.payload[TraceContext::kWireSize], 10);
  EXPECT_EQ(frame.payload[TraceContext::kWireSize + 3], 40);
}

TEST(Frames, RedirectContextIsOptionalOnTheWire) {
  net::RedirectInfo info;
  info.host = "10.0.0.1";
  info.port = 4242;
  info.token = 77;
  const ByteVector plain = info.encode();
  const net::RedirectInfo plain_copy =
      net::RedirectInfo::decode({plain.data(), plain.size()});
  EXPECT_EQ(plain_copy.host, "10.0.0.1");
  EXPECT_EQ(plain_copy.token, 77u);
  EXPECT_FALSE(plain_copy.trace.valid());  // old payload: no context

  info.trace.trace_id = 5;
  info.trace.span_id = 6;
  info.trace.flags = TraceContext::kSampled;
  const ByteVector traced = info.encode();
  EXPECT_EQ(traced.size(), plain.size() + TraceContext::kWireSize);
  const net::RedirectInfo traced_copy =
      net::RedirectInfo::decode({traced.data(), traced.size()});
  EXPECT_TRUE(traced_copy.trace.valid());
  EXPECT_EQ(traced_copy.trace.trace_id, 5u);
  EXPECT_EQ(traced_copy.trace.span_id, 6u);
  // An old decoder sees the ctx bytes as trailing payload and ignores
  // them -- which is exactly what decode() of the prefix does.
  const net::RedirectInfo prefix_copy =
      net::RedirectInfo::decode({traced.data(), plain.size()});
  EXPECT_EQ(prefix_copy.host, "10.0.0.1");
  EXPECT_EQ(prefix_copy.token, 77u);
}

// --- Tracer drop accounting --------------------------------------------------

TEST(Tracer, DroppedSurfacesInSnapshotAndExportedMetadata) {
  Tracer& tracer = Tracer::instance();
  tracer.enable(8);
  for (int i = 0; i < 20; ++i) tracer.record(TraceKind::kChannelWrite, "x");
  tracer.disable();
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);

  NetworkSnapshot snap;
  snap.fill_runtime_counters();
  EXPECT_EQ(snap.trace_recorded, 20u);
  EXPECT_EQ(snap.trace_dropped, 12u);

  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"recorded\":20"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":12"), std::string::npos);

  const TraceExport exported = tracer.export_events();
  EXPECT_EQ(exported.recorded, 20u);
  EXPECT_EQ(exported.dropped, 12u);
  const ByteVector bytes = exported.encode();
  const TraceExport copy = TraceExport::decode({bytes.data(), bytes.size()});
  EXPECT_EQ(copy.dropped, 12u);
  ASSERT_EQ(copy.events.size(), 8u);
  EXPECT_STREQ(copy.events[0].name, "x");
}

// --- STATS_STREAM + Prometheus (the live telemetry plane) -------------------

TEST(Telemetry, StatsStreamDeliversExactlyCountedSnapshots) {
  auto client_node = dist::NodeContext::create();
  rmi::ComputeServer server{"stream-host"};
  rmi::ServerHandle handle{rmi::Endpoint{"127.0.0.1", server.port()},
                           client_node};
  rmi::StatsStream stream =
      handle.stats_stream(std::chrono::milliseconds{10}, 3);
  ASSERT_TRUE(stream.valid());
  int frames = 0;
  while (auto snap = stream.next()) {
    EXPECT_EQ(snap->version, NetworkSnapshot::kVersion);
    ++frames;
  }
  EXPECT_EQ(frames, 3);
  EXPECT_FALSE(stream.valid());  // clean end-of-stream consumed the socket
}

TEST(Telemetry, StatsStreamEndsWhenServerStops) {
  auto client_node = dist::NodeContext::create();
  auto server = std::make_unique<rmi::ComputeServer>("stopping-host");
  rmi::ServerHandle handle{rmi::Endpoint{"127.0.0.1", server->port()},
                           client_node};
  rmi::StatsStream stream =
      handle.stats_stream(std::chrono::milliseconds{5}, 0);
  ASSERT_TRUE(stream.next().has_value());  // the stream is live
  std::jthread stopper{[&] { server->stop(); }};
  int drained = 0;
  while (stream.next() && drained < 1000) ++drained;
  // stop() terminated an unbounded stream without hanging either side.
  SUCCEED();
}

TEST(Telemetry, PrometheusRenderingExposesCountersAndHistograms) {
  const NetworkSnapshot snap = make_v3_sample();
  const std::string text = render_prometheus(snap);
  EXPECT_NE(text.find("dpn_processes_live 1"), std::string::npos);
  EXPECT_NE(text.find("dpn_connect_retries_total 2"), std::string::npos);
  EXPECT_NE(text.find("dpn_trace_events_dropped_total 24"),
            std::string::npos);
  EXPECT_NE(text.find("dpn_task_rtt_seconds_count 50"), std::string::npos);
  EXPECT_NE(text.find("dpn_task_rtt_seconds_bucket"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 50"), std::string::npos);
  EXPECT_NE(text.find("dpn_channel_write_block_seconds_count{channel=\"v3\"}"),
            std::string::npos);
}

TEST(Telemetry, PrometheusExporterAnswersHttpScrapes) {
  rmi::PrometheusExporter exporter{[] {
    NetworkSnapshot snap;
    snap.live = 2;
    return snap;
  }};
  ASSERT_NE(exporter.port(), 0);
  net::Socket scrape = net::Socket::connect("127.0.0.1", exporter.port());
  const std::string request = "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n";
  scrape.write_all({reinterpret_cast<const std::uint8_t*>(request.data()),
                    request.size()});
  std::string response;
  std::uint8_t chunk[1024];
  for (;;) {
    const std::size_t n = scrape.read_some({chunk, sizeof chunk});
    if (n == 0) break;
    response.append(reinterpret_cast<const char*>(chunk), n);
  }
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  EXPECT_NE(response.find("dpn_processes_live 2"), std::string::npos);
  exporter.stop();
}

// --- Acceptance: two-host causal trace --------------------------------------

TEST(FleetTrace, TwoHostDynamicRunMergesOneCausalTimeline) {
  // The dynamic-balancing schema of Figure 17, really cut across two
  // in-process "hosts": each worker is shipped to its own ComputeServer
  // and all task/result traffic crosses loopback TCP.  With tracing on,
  // fleet_trace must merge the three rings (local + both servers) into
  // one Chrome trace where a token's spans cross the host boundary with
  // a flow arrow and the ship handshake forms a causally-linked pair.
  constexpr std::size_t kWorkers = 2;
  Tracer::instance().enable(1u << 16);

  auto node = dist::NodeContext::create();
  std::vector<std::unique_ptr<rmi::ComputeServer>> servers;
  std::vector<rmi::ServerHandle> handles;
  std::vector<std::shared_ptr<core::ChannelOutputStream>> task_outs;
  std::vector<std::shared_ptr<core::ChannelInputStream>> result_ins;
  auto composite = std::make_shared<core::CompositeProcess>();
  for (std::size_t i = 0; i < kWorkers; ++i) {
    auto tasks = std::make_shared<Channel>(4096);
    auto results = std::make_shared<Channel>(4096);
    auto worker = std::make_shared<cluster::ThrottledWorker>(
        tasks->input(), results->output(), /*speed=*/1.0,
        /*task_seconds=*/0.001);
    servers.push_back(std::make_unique<rmi::ComputeServer>(
        "trace-worker-" + std::to_string(i)));
    handles.emplace_back(rmi::Endpoint{"127.0.0.1", servers.back()->port()},
                         node);
    handles.back().submit(worker);
    task_outs.push_back(tasks->output());
    result_ins.push_back(results->input());
  }

  const auto problem = factor::FactorProblem::generate(3, 64, 6);
  auto in = std::make_shared<Channel>(4096);
  auto out = std::make_shared<Channel>(4096);
  auto merged = std::make_shared<Channel>(4096);
  auto tags = std::make_shared<Channel>(4096);
  auto prefix = std::make_shared<Channel>(4096);
  auto index = std::make_shared<Channel>(4096);
  composite->add(std::make_shared<par::Producer>(
      std::make_shared<factor::FactorProducerTask>(problem.n, 6),
      in->output()));
  composite->add(std::make_shared<processes::Turnstile>(
      result_ins, merged->output(), tags->output()));
  composite->add(std::make_shared<Sequence>(
      0, prefix->output(), static_cast<long>(kWorkers)));
  composite->add(std::make_shared<processes::Cons>(
      prefix->input(), tags->input(), index->output()));
  composite->add(std::make_shared<processes::Direct>(
      in->input(), index->input(), task_outs));
  composite->add(std::make_shared<processes::Select>(
      merged->input(), out->output(), kWorkers));
  std::atomic<int> results_seen{0};
  composite->add(std::make_shared<par::Consumer>(
      out->input(), 0,
      [&](const std::shared_ptr<core::Task>&) { ++results_seen; }));
  composite->run();
  EXPECT_EQ(results_seen.load(), 6);

  Tracer::instance().disable();
  const std::string json = rmi::fleet_trace(handles);
  for (auto& server : servers) server->stop();

  // Event-level causality: a ship.send on the local host answered by a
  // ship.recv on another host with the same span id, and a data span
  // (net.send/net.recv) whose two halves live on different hosts.
  const std::vector<TraceEvent> events = Tracer::instance().drain();
  std::map<std::uint64_t, std::uint32_t> ship_sends;
  std::map<std::uint64_t, std::uint32_t> net_sends;
  bool ship_pair = false;
  bool net_pair = false;
  for (const TraceEvent& event : events) {
    if (event.kind == TraceKind::kShipSend) ship_sends[event.arg0] = event.node;
    if (event.kind == TraceKind::kNetSend) net_sends[event.arg0] = event.node;
  }
  for (const TraceEvent& event : events) {
    if (event.kind == TraceKind::kShipRecv) {
      const auto it = ship_sends.find(event.arg0);
      if (it != ship_sends.end() && it->second != event.node) ship_pair = true;
    }
    if (event.kind == TraceKind::kNetRecv) {
      const auto it = net_sends.find(event.arg0);
      if (it != net_sends.end() && it->second != event.node) net_pair = true;
    }
  }
  EXPECT_TRUE(ship_pair) << "no cross-host ship.send/ship.recv span pair";
  EXPECT_TRUE(net_pair) << "no token crossed a host boundary with a span";

  // Merged JSON: one timeline, per-host pid rows, flow arrows both ways.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("dpn host 0 (local)"), std::string::npos);
  EXPECT_NE(json.find("dpn host 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ship.send\""), std::string::npos)
      << json.substr(0, 400);
  EXPECT_NE(json.find("\"name\":\"ship.recv\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"net.send\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"net.recv\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"metadata\":{\"recorded\":"), std::string::npos);
}

}  // namespace
}  // namespace dpn::obs
