#include <gtest/gtest.h>

#include <thread>

#include "core/network.hpp"
#include "dist/ddm.hpp"
#include "dist/ship.hpp"
#include "io/data.hpp"
#include "processes/arith.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "processes/merge.hpp"

/// Distributed deadlock management (paper Section 6.2, implemented): a
/// coordinator aggregates per-node stall state and applies Parks' rule
/// fleet-wide, or detects true distributed deadlock and aborts the fleet.
namespace dpn::dist {
namespace {

using core::Channel;
using core::Network;
using processes::Add;
using processes::Collect;
using processes::CollectSink;
using processes::Cons;
using processes::Constant;
using processes::Duplicate;
using processes::Identity;
using processes::Sequence;

TEST(Coordinator, AgentsConnectAndDetach) {
  DeadlockCoordinator coordinator;
  auto node = NodeContext::create();
  Network network;
  network.add(std::make_shared<Constant>(
      1, std::make_shared<Channel>(64)->output(), 1));
  {
    MonitorAgent agent{"solo", network, node, "127.0.0.1",
                       coordinator.port()};
    while (coordinator.agents_connected() < 1) std::this_thread::yield();
  }
  coordinator.stop();
  EXPECT_EQ(coordinator.outcome(), FleetOutcome::kNone);
}

TEST(Coordinator, HealthyFleetTriggersNothing) {
  // A flowing pipeline never satisfies the stability test.
  DeadlockCoordinator coordinator;
  auto node = NodeContext::create();
  Network network;
  auto ch = network.make_channel({.capacity = 64});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.add(std::make_shared<Sequence>(0, ch->output(), 3000));
  network.add(std::make_shared<Collect>(ch->input(), sink));
  MonitorAgent agent{"healthy", network, node, "127.0.0.1",
                     coordinator.port()};
  network.run();
  agent.stop();
  coordinator.stop();
  EXPECT_EQ(sink->size(), 3000u);
  // A sampling race can very occasionally issue a (harmless) growth
  // command; what must never happen on a healthy fleet is a deadlock
  // verdict.
  EXPECT_NE(coordinator.outcome(), FleetOutcome::kTrueDeadlock);
}

TEST(Coordinator, ResolvesDistributedArtificialDeadlock) {
  // Figure 13, cut across two machines: the route runs on node A, the
  // ordered merge on node B, and the channels between them are *bounded*
  // remote channels with tiny flow-control windows.  The route wedges
  // writing the crowded stream (window exhausted) while the merge waits
  // for the sparse one -- an artificial deadlock no single node can see.
  // The coordinator detects the fleet-wide stall and grows the remote
  // windows until the run completes.
  DeadlockCoordinator::Options options;
  options.poll_interval = std::chrono::milliseconds{2};
  DeadlockCoordinator coordinator{options};

  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();
  node_a->set_remote_window(32);  // 4 elements: far less than the N-1=9
  node_b->set_remote_window(32);  // needed by the Figure 13 imbalance

  constexpr std::int64_t kN = 10;
  constexpr long kTotal = 200;
  auto source = std::make_shared<Channel>(4096, "source");
  auto multiples = std::make_shared<Channel>(4096, "multiples");
  auto others = std::make_shared<Channel>(4096, "others");
  auto merged = std::make_shared<Channel>(4096, "merged");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();

  // The merge moves to node B; multiples/others cross A->B and merged
  // crosses B->A back to the collector.
  auto moving = std::make_shared<processes::OrderedMerge>(
      std::vector{multiples->input(), others->input()}, merged->output(),
      /*eliminate_duplicates=*/false);
  const ByteVector shipment = ship_process(node_a, moving);

  Network network_a;
  network_a.watch(source);
  network_a.add(std::make_shared<Sequence>(1, source->output(), kTotal));
  network_a.add(std::make_shared<processes::RouteByDivisibility>(
      source->input(), multiples->output(), others->output(), kN));
  network_a.add(std::make_shared<Collect>(merged->input(), sink));

  Network network_b;
  network_b.add(receive_process(node_b, {shipment.data(), shipment.size()}));

  MonitorAgent agent_a{"node-a", network_a, node_a, "127.0.0.1",
                       coordinator.port()};
  MonitorAgent agent_b{"node-b", network_b, node_b, "127.0.0.1",
                       coordinator.port()};

  network_a.start();
  network_b.start();
  network_a.join();
  network_b.join();
  agent_a.stop();
  agent_b.stop();
  coordinator.stop();

  ASSERT_EQ(sink->size(), static_cast<std::size_t>(kTotal));
  const auto values = sink->values();
  for (long i = 0; i < kTotal; ++i) EXPECT_EQ(values[i], i + 1);
  EXPECT_EQ(coordinator.outcome(), FleetOutcome::kGrown);
  EXPECT_GE(coordinator.growth_commands(), 1u);
}

TEST(Coordinator, DetectsTrueDistributedDeadlock) {
  // Two nodes, each hosting an Echo that first reads from the other: both
  // block on remote reads with nothing in flight.  No local monitor can
  // tell this apart from waiting on a busy peer; the coordinator can, and
  // aborts the fleet instead of letting it hang.
  DeadlockCoordinator::Options options;
  options.poll_interval = std::chrono::milliseconds{2};
  DeadlockCoordinator coordinator{options};

  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();

  auto ab = std::make_shared<Channel>(64, "ab");
  auto ba = std::make_shared<Channel>(64, "ba");

  // Echo at B: reads ab, writes ba.  Ship both endpoints it holds.
  auto echo_b = std::make_shared<Identity>(ab->input(), ba->output());
  const ByteVector shipment = ship_process(node_a, echo_b);

  Network network_a;
  // Echo at A: reads ba, writes ab -- but reads first, so nobody ever
  // writes and the fleet deadlocks for real.
  class ReadFirstEcho final : public core::IterativeProcess {
   public:
    ReadFirstEcho(std::shared_ptr<core::ChannelInputStream> in,
                  std::shared_ptr<core::ChannelOutputStream> out) {
      track_input(std::move(in));
      track_output(std::move(out));
    }
    std::string type_name() const override { return "test.ReadFirstEcho"; }
    void write_fields(serial::ObjectOutputStream&) const override {
      throw SerializationError{"local-only"};
    }

   protected:
    void step() override {
      io::DataInputStream in{input(0)};
      io::DataOutputStream out{output(0)};
      out.write_i64(in.read_i64());
    }
  };
  network_a.add(std::make_shared<ReadFirstEcho>(ba->input(), ab->output()));

  Network network_b;
  network_b.add(receive_process(node_b, {shipment.data(), shipment.size()}));

  MonitorAgent agent_a{"node-a", network_a, node_a, "127.0.0.1",
                       coordinator.port()};
  MonitorAgent agent_b{"node-b", network_b, node_b, "127.0.0.1",
                       coordinator.port()};

  network_a.start();
  network_b.start();
  network_a.join();  // returns because the coordinator aborts the fleet
  network_b.join();
  agent_a.stop();
  agent_b.stop();
  coordinator.stop();

  EXPECT_EQ(coordinator.outcome(), FleetOutcome::kTrueDeadlock);
}

}  // namespace
}  // namespace dpn::dist
