#include <gtest/gtest.h>

#include "io/memory.hpp"
#include "serial/serial.hpp"

namespace dpn::serial {
namespace {

/// A simple serializable record.
class Point final : public Serializable {
 public:
  Point() = default;
  Point(std::int64_t x, std::int64_t y) : x_(x), y_(y) {}

  std::int64_t x() const { return x_; }
  std::int64_t y() const { return y_; }

  std::string type_name() const override { return "test.Point"; }
  void write_fields(ObjectOutputStream& out) const override {
    out.write_i64(x_);
    out.write_i64(y_);
  }
  static std::shared_ptr<Point> read_object(ObjectInputStream& in) {
    auto p = std::make_shared<Point>();
    p->x_ = in.read_i64();
    p->y_ = in.read_i64();
    return p;
  }

 private:
  std::int64_t x_ = 0;
  std::int64_t y_ = 0;
};

/// A node referencing other objects (shared references).
class Pair final : public Serializable {
 public:
  std::shared_ptr<Serializable> first;
  std::shared_ptr<Serializable> second;

  std::string type_name() const override { return "test.Pair"; }
  void write_fields(ObjectOutputStream& out) const override {
    out.write_object(first);
    out.write_object(second);
  }
  static std::shared_ptr<Pair> read_object(ObjectInputStream& in) {
    auto p = std::make_shared<Pair>();
    p->first = in.read_object();
    p->second = in.read_object();
    return p;
  }
};

/// write_replace: serializes as its replacement.
class Alias final : public Serializable {
 public:
  explicit Alias(std::shared_ptr<Serializable> target)
      : target_(std::move(target)) {}
  std::string type_name() const override { return "test.Alias"; }
  void write_fields(ObjectOutputStream&) const override {
    FAIL() << "write_fields must not run when write_replace substitutes";
  }
  std::shared_ptr<Serializable> write_replace(ObjectOutputStream&) override {
    return target_;
  }

 private:
  std::shared_ptr<Serializable> target_;
};

/// read_resolve: deserializes as a resolved object.
class Marker final : public Serializable {
 public:
  std::string type_name() const override { return "test.Marker"; }
  void write_fields(ObjectOutputStream&) const override {}
  static std::shared_ptr<Marker> read_object(ObjectInputStream&) {
    return std::make_shared<Marker>();
  }
  std::shared_ptr<Serializable> read_resolve(ObjectInputStream&) override {
    return std::make_shared<Point>(99, 100);
  }
};

[[maybe_unused]] const bool kRegistered =
    register_type<Point>("test.Point") && register_type<Pair>("test.Pair") &&
    register_type<Marker>("test.Marker");

TEST(Serial, NullRoundTrip) {
  const ByteVector bytes = to_bytes(nullptr);
  EXPECT_EQ(from_bytes({bytes.data(), bytes.size()}), nullptr);
}

TEST(Serial, SimpleObjectRoundTrip) {
  auto point = std::make_shared<Point>(-5, 7);
  const ByteVector bytes = to_bytes(point);
  auto restored = from_bytes_as<Point>({bytes.data(), bytes.size()});
  EXPECT_EQ(restored->x(), -5);
  EXPECT_EQ(restored->y(), 7);
}

TEST(Serial, NestedObjects) {
  auto pair = std::make_shared<Pair>();
  pair->first = std::make_shared<Point>(1, 2);
  pair->second = std::make_shared<Point>(3, 4);
  const ByteVector bytes = to_bytes(pair);
  auto restored = from_bytes_as<Pair>({bytes.data(), bytes.size()});
  EXPECT_EQ(std::dynamic_pointer_cast<Point>(restored->first)->x(), 1);
  EXPECT_EQ(std::dynamic_pointer_cast<Point>(restored->second)->y(), 4);
}

TEST(Serial, SharedReferenceIdentityPreserved) {
  auto shared = std::make_shared<Point>(8, 9);
  auto pair = std::make_shared<Pair>();
  pair->first = shared;
  pair->second = shared;
  const ByteVector bytes = to_bytes(pair);
  auto restored = from_bytes_as<Pair>({bytes.data(), bytes.size()});
  EXPECT_EQ(restored->first, restored->second);  // same object, not a copy
}

TEST(Serial, SharedReferenceSerializedOnce) {
  auto shared = std::make_shared<Point>(8, 9);
  auto pair = std::make_shared<Pair>();
  pair->first = shared;
  pair->second = shared;
  auto lone = std::make_shared<Pair>();
  lone->first = std::make_shared<Point>(8, 9);
  lone->second = std::make_shared<Point>(8, 9);
  // Back-reference encoding is smaller than writing the object twice.
  EXPECT_LT(to_bytes(pair).size(), to_bytes(lone).size());
}

TEST(Serial, WriteReplaceSubstitutes) {
  auto alias = std::make_shared<Alias>(std::make_shared<Point>(11, 12));
  const ByteVector bytes = to_bytes(alias);
  auto restored = from_bytes_as<Point>({bytes.data(), bytes.size()});
  EXPECT_EQ(restored->x(), 11);
}

TEST(Serial, WriteReplaceKeepsIdentity) {
  auto target = std::make_shared<Point>(1, 1);
  auto alias = std::make_shared<Alias>(target);
  auto pair = std::make_shared<Pair>();
  pair->first = alias;
  pair->second = alias;  // second reference must become a back-reference
  const ByteVector bytes = to_bytes(pair);
  auto restored = from_bytes_as<Pair>({bytes.data(), bytes.size()});
  EXPECT_EQ(restored->first, restored->second);
}

TEST(Serial, ReadResolveSubstitutes) {
  const ByteVector bytes = to_bytes(std::make_shared<Marker>());
  auto restored = from_bytes_as<Point>({bytes.data(), bytes.size()});
  EXPECT_EQ(restored->x(), 99);
}

TEST(Serial, UnknownTypeThrows) {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  ObjectOutputStream out{sink};
  out.write_object(std::make_shared<Point>(0, 0));
  ByteVector bytes = sink->take();
  // Corrupt the embedded type name "test.Point" -> "zest.Point".
  for (std::size_t i = 0; i + 4 < bytes.size(); ++i) {
    if (bytes[i] == 't' && bytes[i + 1] == 'e' && bytes[i + 2] == 's') {
      bytes[i] = 'z';
      break;
    }
  }
  EXPECT_THROW(from_bytes({bytes.data(), bytes.size()}), SerializationError);
}

TEST(Serial, CorruptTagThrows) {
  ByteVector bytes{0x77};
  EXPECT_THROW(from_bytes({bytes.data(), bytes.size()}), SerializationError);
}

TEST(Serial, BadBackReferenceThrows) {
  ByteVector bytes{1 /*kTagReference*/, 5 /*handle*/};
  EXPECT_THROW(from_bytes({bytes.data(), bytes.size()}), SerializationError);
}

TEST(Serial, TruncatedStreamThrows) {
  auto point = std::make_shared<Point>(-5, 7);
  ByteVector bytes = to_bytes(point);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(from_bytes({bytes.data(), bytes.size()}), IoError);
}

TEST(Serial, DuplicateRegistrationThrows) {
  EXPECT_THROW(register_type<Point>("test.Point"), UsageError);
}

TEST(Serial, RegistryListsNames) {
  const auto names = TypeRegistry::global().names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.Point"), names.end());
  EXPECT_TRUE(TypeRegistry::global().contains("test.Pair"));
  EXPECT_FALSE(TypeRegistry::global().contains("test.Nope"));
}

TEST(Serial, ManyObjectsStreamed) {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  ObjectOutputStream out{sink};
  for (int i = 0; i < 100; ++i) {
    out.write_object(std::make_shared<Point>(i, -i));
  }
  ObjectInputStream in{
      std::make_shared<io::MemoryInputStream>(sink->take())};
  for (int i = 0; i < 100; ++i) {
    auto p = in.read_object_as<Point>();
    EXPECT_EQ(p->x(), i);
    EXPECT_EQ(p->y(), -i);
  }
}

}  // namespace
}  // namespace dpn::serial
