#include <gtest/gtest.h>

#include <thread>

#include "core/network.hpp"
#include "dist/node.hpp"
#include "dist/remote_streams.hpp"
#include "dist/ship.hpp"
#include "io/data.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "processes/arith.hpp"

namespace dpn::dist {
namespace {

using core::Channel;
using core::CompositeProcess;
using processes::Add;
using processes::Collect;
using processes::CollectSink;
using processes::Constant;
using processes::Cons;
using processes::Duplicate;
using processes::Identity;
using processes::Sequence;

// --- Rendezvous ---------------------------------------------------------------

TEST(Rendezvous, ExpectThenDial) {
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();
  auto promise = node_a->rendezvous().expect(42);
  std::jthread dialer{[&] {
    std::shared_ptr<net::Stream> stream = RendezvousService::dial(
        "127.0.0.1", node_a->rendezvous().port(), 42, node_b->address());
    const std::string hello = "hi";
    stream->write_all(as_bytes(hello));
  }};
  std::shared_ptr<net::Stream> stream = promise->wait();
  EXPECT_EQ(promise->dialer().port, node_b->rendezvous().port());
  ByteVector buffer(2);
  io::read_fully(*std::make_shared<net::StreamInput>(stream),
                 {buffer.data(), buffer.size()});
  EXPECT_EQ(to_string({buffer.data(), buffer.size()}), "hi");
}

TEST(Rendezvous, DialBeforeExpectIsParked) {
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();
  std::shared_ptr<net::Stream> dialed = RendezvousService::dial(
      "127.0.0.1", node_a->rendezvous().port(), 7, node_b->address());
  // Give the acceptor time to park the connection.
  std::this_thread::sleep_for(std::chrono::milliseconds{50});
  auto promise = node_a->rendezvous().expect(7);
  EXPECT_TRUE(promise->fulfilled());
  std::shared_ptr<net::Stream> stream = promise->wait();
  EXPECT_TRUE(stream != nullptr);
}

TEST(Rendezvous, ForgetCancelsWaiter) {
  auto node = NodeContext::create();
  auto promise = node->rendezvous().expect(9);
  std::jthread canceller{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
    node->rendezvous().forget(9);
  }};
  EXPECT_THROW(promise->wait(), NetError);
}

TEST(Rendezvous, TokensAreUnique) {
  auto node = NodeContext::create();
  std::set<std::uint64_t> tokens;
  for (int i = 0; i < 1000; ++i) tokens.insert(node->next_token());
  EXPECT_EQ(tokens.size(), 1000u);
}

// --- Shipping a process across a cut channel -----------------------------------

TEST(Ship, MiddleStageMovesToAnotherServer) {
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();

  auto ch1 = std::make_shared<Channel>(256, "ch1");
  auto ch2 = std::make_shared<Channel>(256, "ch2");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();

  auto source = std::make_shared<Sequence>(0, ch1->output(), 100);
  auto middle = std::make_shared<Identity>(ch1->input(), ch2->output());
  auto drain = std::make_shared<Collect>(ch2->input(), sink);

  // "Server A" ships the middle stage to "server B": ch1's input endpoint
  // and ch2's output endpoint both move; both channels become sockets.
  const ByteVector shipment = ship_process(node_a, middle);
  auto remote = receive_process(node_b, {shipment.data(), shipment.size()});

  std::jthread host_b{[&] { remote->run(); }};
  std::jthread host_src{[&] { source->run(); }};
  drain->run();

  const auto values = sink->values();
  ASSERT_EQ(values.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(values[i], i);
}

TEST(Ship, UnconsumedBytesTravelWithTheEndpoint) {
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();

  auto ch1 = std::make_shared<Channel>(4096, "ch1");
  auto ch2 = std::make_shared<Channel>(4096, "ch2");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();

  // Pre-fill ch1 with unconsumed data *before* shipping its consumer.
  {
    io::DataOutputStream out{ch1->output()};
    for (std::int64_t i = 0; i < 10; ++i) out.write_i64(i);
  }
  auto middle = std::make_shared<Identity>(ch1->input(), ch2->output());
  auto drain = std::make_shared<Collect>(ch2->input(), sink);

  const ByteVector shipment = ship_process(node_a, middle);
  auto remote = receive_process(node_b, {shipment.data(), shipment.size()});

  // More data flows after the reconnect, through the new socket.
  std::jthread host_b{[&] { remote->run(); }};
  std::jthread producer{[&] {
    io::DataOutputStream out{ch1->output()};
    for (std::int64_t i = 10; i < 20; ++i) out.write_i64(i);
    ch1->output()->close();
  }};
  drain->run();

  const auto values = sink->values();
  ASSERT_EQ(values.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(values[i], i);  // order preserved
}

TEST(Ship, InternalChannelStaysLocalPipe) {
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();

  auto ch_in = std::make_shared<Channel>(256, "in");
  auto mid = std::make_shared<Channel>(256, "mid");
  auto ch_out = std::make_shared<Channel>(256, "out");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();

  // Pre-fill the internal channel too: its buffered bytes must travel.
  {
    io::DataOutputStream out{mid->output()};
    out.write_i64(-1);
  }

  auto composite = std::make_shared<CompositeProcess>();
  composite->add(std::make_shared<Identity>(ch_in->input(), mid->output()));
  composite->add(std::make_shared<Identity>(mid->input(), ch_out->output()));

  auto source = std::make_shared<Sequence>(0, ch_in->output(), 50);
  auto drain = std::make_shared<Collect>(ch_out->input(), sink);

  const ByteVector shipment = ship_process(node_a, composite);
  auto remote = std::dynamic_pointer_cast<CompositeProcess>(
      receive_process(node_b, {shipment.data(), shipment.size()}));
  ASSERT_TRUE(remote);

  // The channel between the two shipped stages must be an ordinary local
  // pipe on server B, not a socket back to A.
  bool found_internal = false;
  for (const auto& in : remote->channel_inputs()) {
    if (in->state()->pipe) found_internal = true;
  }
  EXPECT_TRUE(found_internal);

  std::jthread host_b{[&] { remote->run(); }};
  std::jthread host_src{[&] { source->run(); }};
  drain->run();

  const auto values = sink->values();
  ASSERT_EQ(values.size(), 51u);
  EXPECT_EQ(values[0], -1);  // the buffered element came through first
  for (int i = 0; i < 50; ++i) EXPECT_EQ(values[i + 1], i);
}

TEST(Ship, TerminationCascadesAcrossSockets) {
  // Consumer-side limit: the local Collect stops first; ChannelClosed
  // must cross the socket and kill the remote producer (Section 3.4).
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();

  auto ch = std::make_shared<Channel>(256, "ch");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto source = std::make_shared<Sequence>(0, ch->output());  // unbounded
  auto drain = std::make_shared<Collect>(ch->input(), sink, 10);

  const ByteVector shipment = ship_process(node_a, source);
  auto remote = receive_process(node_b, {shipment.data(), shipment.size()});

  std::jthread host_b{[&] { remote->run(); }};
  drain->run();
  host_b.join();  // must terminate, not run forever

  ASSERT_EQ(sink->size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sink->values()[i], i);
}

TEST(Ship, ProducerLimitDeliversEofAcrossSockets) {
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();

  auto ch = std::make_shared<Channel>(256, "ch");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto source = std::make_shared<Sequence>(5, ch->output(), 7);
  auto drain = std::make_shared<Collect>(ch->input(), sink);  // unbounded

  const ByteVector shipment = ship_process(node_a, source);
  auto remote = receive_process(node_b, {shipment.data(), shipment.size()});
  std::jthread host_b{[&] { remote->run(); }};
  drain->run();  // stops because FIN arrives after the 7 elements

  EXPECT_EQ(sink->size(), 7u);
}

TEST(Ship, RedirectBypassesTheMiddleman) {
  // Paper Figure 15 / Section 4.3: the producer moves A -> B -> C; after
  // the second move, C talks directly to A (the consumer's node).  The
  // abandoned B must not be involved -- we verify the stream survives both
  // moves byte-exactly, and that B's rendezvous sees no successor dial.
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();
  auto node_c = NodeContext::create();

  auto ch = std::make_shared<Channel>(256, "ch");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto source = std::make_shared<Sequence>(0, ch->output(), 200);
  auto drain = std::make_shared<Collect>(ch->input(), sink);

  // Move to B (establishes B -> A data connection)...
  const ByteVector to_b = ship_process(node_a, source);
  auto at_b = receive_process(node_b, {to_b.data(), to_b.size()});
  // ... and immediately onward to C (B tells A in-band to expect C).
  const ByteVector to_c = ship_process(node_b, at_b);
  auto at_c = receive_process(node_c, {to_c.data(), to_c.size()});

  std::jthread host_c{[&] { at_c->run(); }};
  drain->run();

  const auto values = sink->values();
  ASSERT_EQ(values.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(values[i], i);
}

TEST(Ship, RedirectWithTrafficInFlight) {
  // Harder: B runs for a while (data flowing A<-B), then the producer is
  // shipped onward mid-stream.  Bytes already sent, bytes buffered, and
  // bytes yet to be produced must all arrive exactly once, in order.
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();
  auto node_c = NodeContext::create();

  auto ch = std::make_shared<Channel>(256, "ch");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto source = std::make_shared<Sequence>(0, ch->output(), 300);
  auto drain = std::make_shared<Collect>(ch->input(), sink);

  const ByteVector to_b = ship_process(node_a, source);
  auto at_b = std::dynamic_pointer_cast<processes::Sequence>(
      receive_process(node_b, {to_b.data(), to_b.size()}));
  ASSERT_TRUE(at_b);

  // Let B produce the first chunk of the stream.
  std::jthread drainer{[&] { drain->run(); }};
  {
    // Run 100 iterations "manually" at B by writing through its endpoint.
    io::DataOutputStream out{at_b->channel_outputs()[0]};
    for (std::int64_t i = 0; i < 100; ++i) out.write_i64(i);
  }
  while (sink->size() < 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }

  // Now ship a fresh producer for the remainder from B to C over the same
  // channel endpoint (the Sequence at B still holds it).
  auto tail = std::make_shared<Sequence>(100, at_b->channel_outputs()[0], 200);
  const ByteVector to_c = ship_process(node_b, tail);
  auto at_c = receive_process(node_c, {to_c.data(), to_c.size()});
  std::jthread host_c{[&] { at_c->run(); }};

  drainer.join();
  const auto values = sink->values();
  ASSERT_EQ(values.size(), 300u);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(values[i], i);
}

TEST(Ship, DeadConsumerYieldsDeadEndpoint) {
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();

  auto ch = std::make_shared<Channel>(256, "ch");
  ch->input()->close();  // consumer is gone before the shipment

  auto source = std::make_shared<Sequence>(0, ch->output());
  const ByteVector shipment = ship_process(node_a, source);
  auto remote = receive_process(node_b, {shipment.data(), shipment.size()});
  // The remote producer must terminate immediately on its first write.
  remote->run();
  SUCCEED();
}

TEST(Ship, FinishedProducerShipsBufferOnly) {
  // The producer closed before the shipment: the moving consumer carries
  // only the residual bytes (live = false, no socket at all) and ends
  // cleanly after draining them.
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();

  auto ch = std::make_shared<Channel>(256, "ch");
  auto out2 = std::make_shared<Channel>(256, "out2");
  {
    io::DataOutputStream out{ch->output()};
    for (std::int64_t i = 0; i < 5; ++i) out.write_i64(i * 11);
    ch->output()->close();  // producer done before the shipment
  }
  auto mover = std::make_shared<Identity>(ch->input(), out2->output());
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto drain = std::make_shared<Collect>(out2->input(), sink);

  const ByteVector shipment = ship_process(node_a, mover);
  auto remote = receive_process(node_b, {shipment.data(), shipment.size()});
  std::jthread host_b{[&] { remote->run(); }};
  drain->run();
  const auto values = sink->values();
  ASSERT_EQ(values.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(values[i], i * 11);
}

TEST(Ship, EndpointCannotShipTwice) {
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();
  auto ch = std::make_shared<Channel>(256, "ch");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto source = std::make_shared<Sequence>(0, ch->output(), 1);
  auto drain = std::make_shared<Collect>(ch->input(), sink, 1);
  const ByteVector first = ship_process(node_a, source);
  EXPECT_THROW(ship_process(node_a, source), SerializationError);
  // Unblock the pending connection so teardown is clean.
  auto remote = receive_process(node_b, {first.data(), first.size()});
  std::jthread host{[&] { remote->run(); }};
  drain->run();
}

TEST(Ship, ReceivingEndpointOfRemoteProducerCannotMove) {
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();
  auto ch = std::make_shared<Channel>(256, "ch");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto source = std::make_shared<Sequence>(0, ch->output(), 3);
  auto drain = std::make_shared<Collect>(ch->input(), sink);

  const ByteVector shipment = ship_process(node_a, source);
  // The input endpoint's producer is now remote; re-shipping the consumer
  // is documented future work (paper Section 6.1).
  auto holder = std::make_shared<Identity>(
      ch->input(), std::make_shared<Channel>(16)->output());
  EXPECT_THROW(ship_process(node_a, holder), SerializationError);

  auto remote = receive_process(node_b, {shipment.data(), shipment.size()});
  std::jthread host{[&] { remote->run(); }};
  drain->run();
  EXPECT_EQ(sink->size(), 3u);
}

TEST(Ship, WithoutContextThrows) {
  auto ch = std::make_shared<Channel>(16);
  auto source = std::make_shared<Sequence>(0, ch->output(), 1);
  ensure_hooks_installed();
  EXPECT_THROW(serial::to_bytes(source), UsageError);
}

// --- Figure 14: Fibonacci partitioned across two servers ------------------------

TEST(Ship, DistributedFibonacciMatchesLocal) {
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();

  const std::size_t cap = 4096;
  auto ab = std::make_shared<Channel>(cap, "ab");
  auto be = std::make_shared<Channel>(cap, "be");
  auto cd = std::make_shared<Channel>(cap, "cd");
  auto df = std::make_shared<Channel>(cap, "df");
  auto ed = std::make_shared<Channel>(cap, "ed");
  auto eg = std::make_shared<Channel>(cap, "eg");
  auto fg = std::make_shared<Channel>(cap, "fg");
  auto fh = std::make_shared<Channel>(cap, "fh");
  auto gb = std::make_shared<Channel>(cap, "gb");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();

  // Partition: the lower half of Figure 2 (Constant cd, Cons df,
  // Duplicate f) moves to server B; everything else stays on A.
  auto moving = std::make_shared<CompositeProcess>();
  moving->add(std::make_shared<Constant>(1, cd->output(), 1));
  moving->add(std::make_shared<Cons>(cd->input(), ed->input(), df->output()));
  moving->add(
      std::make_shared<Duplicate>(df->input(), fh->output(), fg->output()));

  auto staying = std::make_shared<CompositeProcess>();
  staying->add(std::make_shared<Constant>(1, ab->output(), 1));
  staying->add(std::make_shared<Cons>(ab->input(), gb->input(), be->output()));
  staying->add(
      std::make_shared<Duplicate>(be->input(), ed->output(), eg->output()));
  staying->add(std::make_shared<Add>(eg->input(), fg->input(), gb->output()));
  staying->add(std::make_shared<Collect>(fh->input(), sink, 20));

  const ByteVector shipment = ship_process(node_a, moving);
  auto remote = receive_process(node_b, {shipment.data(), shipment.size()});

  std::jthread host_b{[&] { remote->run(); }};
  staying->run();

  std::vector<std::int64_t> expected;
  std::int64_t x = 1, y = 1;
  for (int i = 0; i < 20; ++i) {
    expected.push_back(x);
    const std::int64_t next = x + y;
    x = y;
    y = next;
  }
  EXPECT_EQ(sink->values(), expected);
}

}  // namespace
}  // namespace dpn::dist
