#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "dist/ship.hpp"
#include "dsp/beam.hpp"
#include "factor/factor.hpp"
#include "par/generic.hpp"
#include "processes/arith.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "processes/merge.hpp"
#include "processes/router.hpp"
#include "processes/sieve.hpp"

/// Shipping round trips for every serializable process type: each one is
/// serialized with live channel endpoints, reconstructed on a second
/// node, and checked for identity of type, configuration, and endpoint
/// arity.  This exercises every read_object factory and write_fields
/// implementation in the process library.
namespace dpn {
namespace {

using core::Channel;
using core::Process;

std::shared_ptr<dist::NodeContext>& node_a() {
  static auto node = dist::NodeContext::create();
  return node;
}
std::shared_ptr<dist::NodeContext>& node_b() {
  static auto node = dist::NodeContext::create();
  return node;
}

std::shared_ptr<Process> roundtrip(const std::shared_ptr<Process>& process) {
  const ByteVector bytes = dist::ship_process(node_a(), process);
  auto restored =
      dist::receive_process(node_b(), {bytes.data(), bytes.size()});
  EXPECT_EQ(restored->type_name(), process->type_name());
  EXPECT_EQ(restored->channel_inputs().size(),
            process->channel_inputs().size());
  EXPECT_EQ(restored->channel_outputs().size(),
            process->channel_outputs().size());
  return restored;
}

std::shared_ptr<Channel> ch() { return std::make_shared<Channel>(4096); }

TEST(ProcessSerial, Constant) {
  auto p = std::make_shared<processes::Constant>(42, ch()->output(), 7);
  auto r = std::dynamic_pointer_cast<processes::Constant>(roundtrip(p));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->iterations(), 7);
}

TEST(ProcessSerial, ConstantF64) {
  auto p = std::make_shared<processes::ConstantF64>(2.5, ch()->output(), 3);
  EXPECT_TRUE(std::dynamic_pointer_cast<processes::ConstantF64>(
      roundtrip(p)));
}

TEST(ProcessSerial, SequenceCarriesMidRunState) {
  auto channel = ch();
  auto p = std::make_shared<processes::Sequence>(10, channel->output(), 100,
                                                 3);
  auto r = std::dynamic_pointer_cast<processes::Sequence>(roundtrip(p));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->iterations(), 100);
}

TEST(ProcessSerial, PrintKeepsLabel) {
  auto p = std::make_shared<processes::Print>(ch()->input(), 5, "tag");
  EXPECT_TRUE(std::dynamic_pointer_cast<processes::Print>(roundtrip(p)));
}

TEST(ProcessSerial, PrintF64) {
  auto p = std::make_shared<processes::PrintF64>(ch()->input(), 5, "x");
  EXPECT_TRUE(std::dynamic_pointer_cast<processes::PrintF64>(roundtrip(p)));
}

TEST(ProcessSerial, Cons) {
  auto p = std::make_shared<processes::Cons>(ch()->input(), ch()->input(),
                                             ch()->output());
  auto r = std::dynamic_pointer_cast<processes::Cons>(roundtrip(p));
  ASSERT_TRUE(r);
  EXPECT_FALSE(r->spliced_out());
}

TEST(ProcessSerial, Duplicate) {
  auto p = std::make_shared<processes::Duplicate>(
      ch()->input(), std::vector{ch()->output(), ch()->output(),
                                 ch()->output()});
  auto r = roundtrip(p);
  EXPECT_EQ(r->channel_outputs().size(), 3u);
}

TEST(ProcessSerial, Identity) {
  auto p = std::make_shared<processes::Identity>(ch()->input(),
                                                 ch()->output());
  EXPECT_TRUE(std::dynamic_pointer_cast<processes::Identity>(roundtrip(p)));
}

TEST(ProcessSerial, ArithmeticFamily) {
  roundtrip(std::make_shared<processes::Add>(ch()->input(), ch()->input(),
                                             ch()->output()));
  roundtrip(std::make_shared<processes::Scale>(ch()->input(), ch()->output(),
                                               -9));
  roundtrip(std::make_shared<processes::Divide>(ch()->input(), ch()->input(),
                                                ch()->output()));
  roundtrip(std::make_shared<processes::Average>(
      ch()->input(), ch()->input(), ch()->output()));
  roundtrip(std::make_shared<processes::Equal>(ch()->input(), ch()->input(),
                                               ch()->output()));
  roundtrip(std::make_shared<processes::Guard>(ch()->input(), ch()->input(),
                                               ch()->output(), false));
}

TEST(ProcessSerial, SieveFamily) {
  roundtrip(std::make_shared<processes::Modulo>(ch()->input(),
                                                ch()->output(), 13));
  roundtrip(std::make_shared<processes::Sift>(ch()->input(), ch()->output()));
  roundtrip(std::make_shared<processes::RecursiveSift>(ch()->input(),
                                                       ch()->output()));
}

TEST(ProcessSerial, MergeFamily) {
  roundtrip(std::make_shared<processes::OrderedMerge>(
      std::vector{ch()->input(), ch()->input(), ch()->input()},
      ch()->output()));
  roundtrip(std::make_shared<processes::RouteByDivisibility>(
      ch()->input(), ch()->output(), ch()->output(), 4));
}

TEST(ProcessSerial, RouterFamily) {
  roundtrip(std::make_shared<processes::Scatter>(
      ch()->input(), std::vector{ch()->output(), ch()->output()}));
  roundtrip(std::make_shared<processes::Gather>(
      std::vector{ch()->input(), ch()->input()}, ch()->output()));
  roundtrip(std::make_shared<processes::Direct>(
      ch()->input(), ch()->input(),
      std::vector{ch()->output(), ch()->output()}));
  roundtrip(std::make_shared<processes::Turnstile>(
      std::vector{ch()->input(), ch()->input()}, ch()->output(),
      ch()->output()));
  roundtrip(std::make_shared<processes::Select>(ch()->input(),
                                                ch()->output(), 4));
}

TEST(ProcessSerial, ParFamily) {
  const auto problem = factor::FactorProblem::generate(1, 64, 2);
  roundtrip(std::make_shared<par::Producer>(
      std::make_shared<factor::FactorProducerTask>(problem.n, 2),
      ch()->output()));
  roundtrip(std::make_shared<par::Worker>(ch()->input(), ch()->output()));
  roundtrip(std::make_shared<par::Consumer>(ch()->input()));
}

TEST(ProcessSerial, ThrottledWorker) {
  auto p = std::make_shared<cluster::ThrottledWorker>(
      ch()->input(), ch()->output(), 1.5, 0.002);
  auto r = std::dynamic_pointer_cast<cluster::ThrottledWorker>(roundtrip(p));
  ASSERT_TRUE(r);
  EXPECT_DOUBLE_EQ(r->speed(), 1.5);
}

TEST(ProcessSerial, DspFamily) {
  roundtrip(std::make_shared<dsp::PlaneWaveSource>(ch()->output(), 0.1, 2.0,
                                                   0.5, 9, 100));
  roundtrip(std::make_shared<dsp::DelaySum>(
      std::vector{ch()->input(), ch()->input()}, ch()->output(),
      std::vector<std::uint32_t>{0, 3}));
  roundtrip(std::make_shared<dsp::SpectralPower>(ch()->input(),
                                                 ch()->output(), 64, 4));
}

TEST(ProcessSerial, CompositeOfMixedMembers) {
  auto composite = std::make_shared<core::CompositeProcess>();
  auto inner = ch();  // internal channel between the two members
  composite->add(
      std::make_shared<processes::Scale>(ch()->input(), inner->output(), 2));
  composite->add(std::make_shared<processes::Modulo>(inner->input(),
                                                     ch()->output(), 3));
  auto r = std::dynamic_pointer_cast<core::CompositeProcess>(
      roundtrip(composite));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->processes().size(), 2u);
  EXPECT_EQ(r->processes()[0]->type_name(), "dpn.Scale");
  EXPECT_EQ(r->processes()[1]->type_name(), "dpn.Modulo");
}

TEST(ProcessSerial, RestoredProcessActuallyRuns) {
  // Beyond structure: a reconstructed Scale transforms data correctly
  // through its reconnected channels.
  auto in = std::make_shared<Channel>(4096);
  auto out = std::make_shared<Channel>(4096);
  auto scale = std::make_shared<processes::Scale>(in->input(), out->output(),
                                                  5);
  auto restored = roundtrip(scale);
  std::jthread host{[&] { restored->run(); }};
  io::DataOutputStream writer{in->output()};
  io::DataInputStream reader{out->input()};
  for (int i = 0; i < 20; ++i) {
    writer.write_i64(i);
    EXPECT_EQ(reader.read_i64(), 5 * i);
  }
  in->output()->close();
}

}  // namespace
}  // namespace dpn
