#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "io/memory.hpp"
#include "net/event_loop.hpp"
#include "net/frames.hpp"
#include "net/socket.hpp"

namespace dpn::net {
namespace {

TEST(Socket, ConnectAndEcho) {
  ServerSocket server{0};
  std::jthread echo{[&] {
    Socket peer = server.accept();
    ByteVector buffer(64);
    const std::size_t n = peer.read_some({buffer.data(), buffer.size()});
    peer.write_all({buffer.data(), n});
  }};
  Socket client = Socket::connect("127.0.0.1", server.port());
  const std::string message = "ping";
  client.write_all(as_bytes(message));
  ByteVector reply(4);
  std::size_t got = 0;
  while (got < reply.size()) {
    got += client.read_some({reply.data() + got, reply.size() - got});
  }
  EXPECT_EQ(to_string({reply.data(), reply.size()}), message);
}

TEST(Socket, PeerShutdownDeliversEof) {
  ServerSocket server{0};
  std::jthread closer{[&] {
    Socket peer = server.accept();
    peer.shutdown_write();
    // Keep the socket alive briefly so the client reads a clean EOF.
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
  }};
  Socket client = Socket::connect("127.0.0.1", server.port());
  std::uint8_t b = 0;
  EXPECT_EQ(client.read_some({&b, 1}), 0u);
}

TEST(Socket, WriteToClosedPeerThrowsChannelClosed) {
  ServerSocket server{0};
  std::jthread closer{[&] {
    Socket peer = server.accept();
    peer.close();
  }};
  Socket client = Socket::connect("127.0.0.1", server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds{20});
  const ByteVector junk(8192, 1);
  // The first write may be buffered; keep writing until the RST lands.
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) {
          client.write_all({junk.data(), junk.size()});
        }
      },
      ChannelClosed);
}

TEST(Socket, CloseWakesAccept) {
  ServerSocket server{0};
  std::jthread closer{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
    server.close();
  }};
  EXPECT_THROW(server.accept(), NetError);
}

TEST(Socket, ConnectRefusedThrows) {
  // Port 1 is never listening on a sane test host.
  EXPECT_THROW(Socket::connect("127.0.0.1", 1), NetError);
}

TEST(Socket, BadAddressThrows) {
  EXPECT_THROW(Socket::connect("not-an-address", 80), NetError);
}

TEST(Socket, LocalhostNameResolves) {
  ServerSocket server{0};
  std::jthread acceptor{[&] { Socket peer = server.accept(); }};
  EXPECT_NO_THROW(Socket::connect("localhost", server.port()));
}

TEST(Socket, EphemeralPortAssigned) {
  ServerSocket server{0};
  EXPECT_GT(server.port(), 0);
}

TEST(SocketStreams, StreamOverSocket) {
  ServerSocket server{0};
  std::jthread echo{[&] {
    auto peer = std::make_shared<Socket>(server.accept());
    SocketInputStream in{peer};
    SocketOutputStream out{peer};
    io::pump(in, out);
  }};
  auto client =
      std::make_shared<Socket>(Socket::connect("127.0.0.1", server.port()));
  SocketOutputStream out{client};
  SocketInputStream in{client};
  const std::string message = "through the stream stack";
  out.write(as_bytes(message));
  out.close();  // half-close ends the echo pump
  ByteVector reply(message.size());
  io::read_fully(in, {reply.data(), reply.size()});
  EXPECT_EQ(to_string({reply.data(), reply.size()}), message);
}

// --- Event-loop timer wheel --------------------------------------------------

TEST(EventLoopTimers, FiresAfterDelay) {
  EventLoop loop;
  std::promise<void> fired;
  const auto armed_at = std::chrono::steady_clock::now();
  loop.post([&] {
    loop.add_timer(std::chrono::milliseconds{50}, [&] { fired.set_value(); });
  });
  auto done = fired.get_future();
  ASSERT_EQ(done.wait_for(std::chrono::seconds{5}), std::future_status::ready);
  EXPECT_GE(std::chrono::steady_clock::now() - armed_at,
            std::chrono::milliseconds{40});
}

TEST(EventLoopTimers, ArmedAfterIdleGapFiresAfterItsDelay) {
  EventLoop loop;
  // Let the loop go fully idle (no timers armed, epoll_wait parked) for
  // longer than the timer delay.  Regression: the wheel anchor went stale
  // across the idle gap, and the end-of-iteration catch-up swept past the
  // freshly armed entry's slot, firing it instantly -- the "first mux
  // accept after an idle period dies with a preface timeout at t=0" bug.
  std::this_thread::sleep_for(std::chrono::milliseconds{250});
  std::promise<void> fired;
  const auto armed_at = std::chrono::steady_clock::now();
  loop.post([&] {
    loop.add_timer(std::chrono::milliseconds{100}, [&] { fired.set_value(); });
  });
  auto done = fired.get_future();
  ASSERT_EQ(done.wait_for(std::chrono::seconds{5}), std::future_status::ready);
  EXPECT_GE(std::chrono::steady_clock::now() - armed_at,
            std::chrono::milliseconds{90});
}

TEST(EventLoopTimers, CancelledTimerNeverFires) {
  EventLoop loop;
  std::atomic<bool> fired{false};
  std::promise<void> cancelled;
  loop.post([&] {
    const auto id = loop.add_timer(std::chrono::milliseconds{30},
                                   [&] { fired.store(true); });
    loop.cancel_timer(id);
    cancelled.set_value();
  });
  cancelled.get_future().wait();
  std::this_thread::sleep_for(std::chrono::milliseconds{80});
  EXPECT_FALSE(fired.load());
  EXPECT_EQ(loop.armed_timers(), 0u);
}

// --- Frame codec -------------------------------------------------------------

TEST(Frames, DataRoundTrip) {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  FrameWriter writer{sink};
  const std::string payload = "hello frames";
  writer.write_data(as_bytes(payload));
  writer.write_fin();

  FrameReader reader{std::make_shared<io::MemoryInputStream>(sink->take())};
  Frame frame = reader.read_frame();
  EXPECT_EQ(frame.type, FrameType::kData);
  EXPECT_EQ(to_string({frame.payload.data(), frame.payload.size()}), payload);
  EXPECT_EQ(reader.read_frame().type, FrameType::kFin);
}

/// Counts discrete write operations -- each stands for one syscall when
/// the underlying stream is a socket.
class CountingOutputStream final : public io::OutputStream {
 public:
  void write(ByteSpan data) override {
    ++ops;
    bytes.insert(bytes.end(), data.begin(), data.end());
  }
  void write_vectored(ByteSpan a, ByteSpan b) override {
    ++ops;
    bytes.insert(bytes.end(), a.begin(), a.end());
    bytes.insert(bytes.end(), b.begin(), b.end());
  }
  void close() override {}
  int ops = 0;
  ByteVector bytes;
};

TEST(Frames, DataFrameIsOneWriteOperation) {
  // Header and payload travel as one gathered write: on a socket that is
  // a single ::sendmsg, not a 5-byte header syscall plus a payload one.
  auto sink = std::make_shared<CountingOutputStream>();
  FrameWriter writer{sink};
  const ByteVector payload{1, 2, 3, 4, 5};
  writer.write_data({payload.data(), payload.size()});
  EXPECT_EQ(sink->ops, 1);

  // And the wire bytes are still a well-formed frame.
  FrameReader reader{std::make_shared<io::MemoryInputStream>(sink->bytes)};
  const Frame frame = reader.read_frame();
  EXPECT_EQ(frame.type, FrameType::kData);
  EXPECT_EQ(frame.payload, payload);
}

TEST(Frames, ControlFramesAreOneWriteOperation) {
  auto sink = std::make_shared<CountingOutputStream>();
  FrameWriter writer{sink};
  writer.write_fin();
  EXPECT_EQ(sink->ops, 1);
  writer.write_credit(4096);
  EXPECT_EQ(sink->ops, 2);

  FrameReader reader{std::make_shared<io::MemoryInputStream>(sink->bytes)};
  EXPECT_EQ(reader.read_frame().type, FrameType::kFin);
  const Frame credit = reader.read_frame();
  EXPECT_EQ(credit.type, FrameType::kCredit);
  ASSERT_EQ(credit.payload.size(), 4u);
  EXPECT_EQ(get_u32(credit.payload.data()), 4096u);
}

TEST(Frames, EmptyDataFrameElided) {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  FrameWriter writer{sink};
  writer.write_data({});
  EXPECT_TRUE(sink->data().empty());
}

TEST(Frames, TransportEofSynthesizesFin) {
  FrameReader reader{std::make_shared<io::MemoryInputStream>(ByteVector{})};
  EXPECT_EQ(reader.read_frame().type, FrameType::kFin);
}

TEST(Frames, TruncatedHeaderThrows) {
  ByteVector partial{0, 0, 0};  // half a header
  FrameReader reader{std::make_shared<io::MemoryInputStream>(partial)};
  EXPECT_THROW(reader.read_frame(), EndOfStream);
}

TEST(Frames, TruncatedPayloadThrows) {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  FrameWriter writer{sink};
  writer.write_data(as_bytes(std::string{"full payload"}));
  ByteVector bytes = sink->take();
  bytes.resize(bytes.size() - 3);
  FrameReader reader{std::make_shared<io::MemoryInputStream>(bytes)};
  EXPECT_THROW(reader.read_frame(), EndOfStream);
}

TEST(Frames, OversizedFrameRejected) {
  ByteVector header{0 /*kData*/, 0xff, 0xff, 0xff, 0xff};
  FrameReader reader{std::make_shared<io::MemoryInputStream>(header)};
  EXPECT_THROW(reader.read_frame(), IoError);
}

TEST(Frames, RedirectInfoRoundTrip) {
  RedirectInfo info;
  info.host = "10.1.2.3";
  info.port = 65000;
  info.token = 0xdeadbeefcafef00dULL;
  auto sink = std::make_shared<io::MemoryOutputStream>();
  FrameWriter writer{sink};
  writer.write_redirect(info);
  FrameReader reader{std::make_shared<io::MemoryInputStream>(sink->take())};
  Frame frame = reader.read_frame();
  ASSERT_EQ(frame.type, FrameType::kRedirect);
  const RedirectInfo decoded =
      RedirectInfo::decode({frame.payload.data(), frame.payload.size()});
  EXPECT_EQ(decoded.host, info.host);
  EXPECT_EQ(decoded.port, info.port);
  EXPECT_EQ(decoded.token, info.token);
}

TEST(Frames, ManyFramesInOrder) {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  FrameWriter writer{sink};
  for (int i = 0; i < 50; ++i) {
    ByteVector payload(static_cast<std::size_t>(i) + 1,
                       static_cast<std::uint8_t>(i));
    writer.write_data({payload.data(), payload.size()});
  }
  writer.write_fin();
  FrameReader reader{std::make_shared<io::MemoryInputStream>(sink->take())};
  for (int i = 0; i < 50; ++i) {
    Frame frame = reader.read_frame();
    ASSERT_EQ(frame.type, FrameType::kData);
    EXPECT_EQ(frame.payload.size(), static_cast<std::size_t>(i) + 1);
    EXPECT_EQ(frame.payload[0], static_cast<std::uint8_t>(i));
  }
  EXPECT_EQ(reader.read_frame().type, FrameType::kFin);
}

TEST(Frames, OverSocketEndToEnd) {
  ServerSocket server{0};
  std::jthread producer{[&] {
    auto peer = std::make_shared<Socket>(server.accept());
    FrameWriter writer{std::make_shared<SocketOutputStream>(peer)};
    writer.write_data(as_bytes(std::string{"one"}));
    writer.write_data(as_bytes(std::string{"two"}));
    writer.write_fin();
  }};
  auto client =
      std::make_shared<Socket>(Socket::connect("127.0.0.1", server.port()));
  FrameReader reader{std::make_shared<SocketInputStream>(client)};
  EXPECT_EQ(to_string({reader.read_frame().payload.data(), 3}), "one");
  EXPECT_EQ(to_string({reader.read_frame().payload.data(), 3}), "two");
  EXPECT_EQ(reader.read_frame().type, FrameType::kFin);
}

}  // namespace
}  // namespace dpn::net
