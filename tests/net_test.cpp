#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstdlib>
#include <future>
#include <thread>

#include "io/memory.hpp"
#include "net/event_loop.hpp"
#include "net/frames.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "sched/scheduler.hpp"

namespace dpn::net {
namespace {

TEST(Socket, ConnectAndEcho) {
  ServerSocket server{0};
  std::jthread echo{[&] {
    Socket peer = server.accept();
    ByteVector buffer(64);
    const std::size_t n = peer.read_some({buffer.data(), buffer.size()});
    peer.write_all({buffer.data(), n});
  }};
  Socket client = Socket::connect("127.0.0.1", server.port());
  const std::string message = "ping";
  client.write_all(as_bytes(message));
  ByteVector reply(4);
  std::size_t got = 0;
  while (got < reply.size()) {
    got += client.read_some({reply.data() + got, reply.size() - got});
  }
  EXPECT_EQ(dpn::to_string(ByteSpan{reply.data(), reply.size()}), message);
}

TEST(Socket, PeerShutdownDeliversEof) {
  ServerSocket server{0};
  std::jthread closer{[&] {
    Socket peer = server.accept();
    peer.shutdown_write();
    // Keep the socket alive briefly so the client reads a clean EOF.
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
  }};
  Socket client = Socket::connect("127.0.0.1", server.port());
  std::uint8_t b = 0;
  EXPECT_EQ(client.read_some({&b, 1}), 0u);
}

TEST(Socket, WriteToClosedPeerThrowsChannelClosed) {
  ServerSocket server{0};
  std::jthread closer{[&] {
    Socket peer = server.accept();
    peer.close();
  }};
  Socket client = Socket::connect("127.0.0.1", server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds{20});
  const ByteVector junk(8192, 1);
  // The first write may be buffered; keep writing until the RST lands.
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) {
          client.write_all({junk.data(), junk.size()});
        }
      },
      ChannelClosed);
}

TEST(Socket, CloseWakesAccept) {
  ServerSocket server{0};
  std::jthread closer{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
    server.close();
  }};
  EXPECT_THROW(server.accept(), NetError);
}

TEST(Socket, ConnectRefusedThrows) {
  // Port 1 is never listening on a sane test host.
  EXPECT_THROW(Socket::connect("127.0.0.1", 1), NetError);
}

TEST(Socket, BadAddressThrows) {
  EXPECT_THROW(Socket::connect("not-an-address", 80), NetError);
}

TEST(Socket, LocalhostNameResolves) {
  ServerSocket server{0};
  std::jthread acceptor{[&] { Socket peer = server.accept(); }};
  EXPECT_NO_THROW(Socket::connect("localhost", server.port()));
}

TEST(Socket, EphemeralPortAssigned) {
  ServerSocket server{0};
  EXPECT_GT(server.port(), 0);
}

TEST(SocketStreams, StreamOverSocket) {
  ServerSocket server{0};
  std::jthread echo{[&] {
    auto peer = std::make_shared<Socket>(server.accept());
    SocketInputStream in{peer};
    SocketOutputStream out{peer};
    io::pump(in, out);
  }};
  auto client =
      std::make_shared<Socket>(Socket::connect("127.0.0.1", server.port()));
  SocketOutputStream out{client};
  SocketInputStream in{client};
  const std::string message = "through the stream stack";
  out.write(as_bytes(message));
  out.close();  // half-close ends the echo pump
  ByteVector reply(message.size());
  io::read_fully(in, {reply.data(), reply.size()});
  EXPECT_EQ(dpn::to_string(ByteSpan{reply.data(), reply.size()}), message);
}

// --- Event-loop timer wheel --------------------------------------------------

TEST(EventLoopTimers, FiresAfterDelay) {
  EventLoop loop;
  std::promise<void> fired;
  const auto armed_at = std::chrono::steady_clock::now();
  loop.post([&] {
    loop.add_timer(std::chrono::milliseconds{50}, [&] { fired.set_value(); });
  });
  auto done = fired.get_future();
  ASSERT_EQ(done.wait_for(std::chrono::seconds{5}), std::future_status::ready);
  EXPECT_GE(std::chrono::steady_clock::now() - armed_at,
            std::chrono::milliseconds{40});
}

TEST(EventLoopTimers, ArmedAfterIdleGapFiresAfterItsDelay) {
  EventLoop loop;
  // Let the loop go fully idle (no timers armed, epoll_wait parked) for
  // longer than the timer delay.  Regression: the wheel anchor went stale
  // across the idle gap, and the end-of-iteration catch-up swept past the
  // freshly armed entry's slot, firing it instantly -- the "first mux
  // accept after an idle period dies with a preface timeout at t=0" bug.
  std::this_thread::sleep_for(std::chrono::milliseconds{250});
  std::promise<void> fired;
  const auto armed_at = std::chrono::steady_clock::now();
  loop.post([&] {
    loop.add_timer(std::chrono::milliseconds{100}, [&] { fired.set_value(); });
  });
  auto done = fired.get_future();
  ASSERT_EQ(done.wait_for(std::chrono::seconds{5}), std::future_status::ready);
  EXPECT_GE(std::chrono::steady_clock::now() - armed_at,
            std::chrono::milliseconds{90});
}

TEST(EventLoopPosts, PostDuringDrainIsNotLost) {
  EventLoop loop;
  // Regression: the loop read (reset) its wake eventfd AFTER draining the
  // post queue, so a post() landing while earlier posted functions ran
  // had its wake consumed with the function still queued, and an idle
  // loop re-entered an unbounded epoll_wait without ever running it.
  // One process-wide loop was re-woken by unrelated connections fast
  // enough to hide this; a quiet per-connection loop in the reactor pool
  // slept forever -- the "mux endpoint stops flushing credits under
  // DPN_NET_LOOPS>1" hang.  Holding the first posted function open while
  // posting a second lands the second post exactly in that window.
  std::promise<void> started, release, second_ran;
  loop.post([&] {
    started.set_value();
    release.get_future().wait();
  });
  started.get_future().wait();  // the loop is now mid-drain
  loop.post([&] { second_ran.set_value(); });
  release.set_value();
  ASSERT_EQ(second_ran.get_future().wait_for(std::chrono::seconds{5}),
            std::future_status::ready);
}

TEST(EventLoopTimers, CancelledTimerNeverFires) {
  EventLoop loop;
  std::atomic<bool> fired{false};
  std::promise<void> cancelled;
  loop.post([&] {
    const auto id = loop.add_timer(std::chrono::milliseconds{30},
                                   [&] { fired.store(true); });
    loop.cancel_timer(id);
    cancelled.set_value();
  });
  cancelled.get_future().wait();
  std::this_thread::sleep_for(std::chrono::milliseconds{80});
  EXPECT_FALSE(fired.load());
  EXPECT_EQ(loop.armed_timers(), 0u);
}

// --- Frame codec -------------------------------------------------------------

TEST(Frames, DataRoundTrip) {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  FrameWriter writer{sink};
  const std::string payload = "hello frames";
  writer.write_data(as_bytes(payload));
  writer.write_fin();

  FrameReader reader{std::make_shared<io::MemoryInputStream>(sink->take())};
  Frame frame = reader.read_frame();
  EXPECT_EQ(frame.type, FrameType::kData);
  EXPECT_EQ(dpn::to_string(ByteSpan{frame.payload.data(), frame.payload.size()}), payload);
  EXPECT_EQ(reader.read_frame().type, FrameType::kFin);
}

/// Counts discrete write operations -- each stands for one syscall when
/// the underlying stream is a socket.
class CountingOutputStream final : public io::OutputStream {
 public:
  void write(ByteSpan data) override {
    ++ops;
    bytes.insert(bytes.end(), data.begin(), data.end());
  }
  void write_vectored(ByteSpan a, ByteSpan b) override {
    ++ops;
    bytes.insert(bytes.end(), a.begin(), a.end());
    bytes.insert(bytes.end(), b.begin(), b.end());
  }
  void close() override {}
  int ops = 0;
  ByteVector bytes;
};

TEST(Frames, DataFrameIsOneWriteOperation) {
  // Header and payload travel as one gathered write: on a socket that is
  // a single ::sendmsg, not a 5-byte header syscall plus a payload one.
  auto sink = std::make_shared<CountingOutputStream>();
  FrameWriter writer{sink};
  const ByteVector payload{1, 2, 3, 4, 5};
  writer.write_data({payload.data(), payload.size()});
  EXPECT_EQ(sink->ops, 1);

  // And the wire bytes are still a well-formed frame.
  FrameReader reader{std::make_shared<io::MemoryInputStream>(sink->bytes)};
  const Frame frame = reader.read_frame();
  EXPECT_EQ(frame.type, FrameType::kData);
  EXPECT_EQ(frame.payload, payload);
}

TEST(Frames, ControlFramesAreOneWriteOperation) {
  auto sink = std::make_shared<CountingOutputStream>();
  FrameWriter writer{sink};
  writer.write_fin();
  EXPECT_EQ(sink->ops, 1);
  writer.write_credit(4096);
  EXPECT_EQ(sink->ops, 2);

  FrameReader reader{std::make_shared<io::MemoryInputStream>(sink->bytes)};
  EXPECT_EQ(reader.read_frame().type, FrameType::kFin);
  const Frame credit = reader.read_frame();
  EXPECT_EQ(credit.type, FrameType::kCredit);
  ASSERT_EQ(credit.payload.size(), 4u);
  EXPECT_EQ(get_u32(credit.payload.data()), 4096u);
}

TEST(Frames, EmptyDataFrameElided) {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  FrameWriter writer{sink};
  writer.write_data({});
  EXPECT_TRUE(sink->data().empty());
}

TEST(Frames, TransportEofSynthesizesFin) {
  FrameReader reader{std::make_shared<io::MemoryInputStream>(ByteVector{})};
  EXPECT_EQ(reader.read_frame().type, FrameType::kFin);
}

TEST(Frames, TruncatedHeaderThrows) {
  ByteVector partial{0, 0, 0};  // half a header
  FrameReader reader{std::make_shared<io::MemoryInputStream>(partial)};
  EXPECT_THROW(reader.read_frame(), EndOfStream);
}

TEST(Frames, TruncatedPayloadThrows) {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  FrameWriter writer{sink};
  writer.write_data(as_bytes(std::string{"full payload"}));
  ByteVector bytes = sink->take();
  bytes.resize(bytes.size() - 3);
  FrameReader reader{std::make_shared<io::MemoryInputStream>(bytes)};
  EXPECT_THROW(reader.read_frame(), EndOfStream);
}

TEST(Frames, OversizedFrameRejected) {
  ByteVector header{0 /*kData*/, 0xff, 0xff, 0xff, 0xff};
  FrameReader reader{std::make_shared<io::MemoryInputStream>(header)};
  EXPECT_THROW(reader.read_frame(), IoError);
}

TEST(Frames, RedirectInfoRoundTrip) {
  RedirectInfo info;
  info.host = "10.1.2.3";
  info.port = 65000;
  info.token = 0xdeadbeefcafef00dULL;
  auto sink = std::make_shared<io::MemoryOutputStream>();
  FrameWriter writer{sink};
  writer.write_redirect(info);
  FrameReader reader{std::make_shared<io::MemoryInputStream>(sink->take())};
  Frame frame = reader.read_frame();
  ASSERT_EQ(frame.type, FrameType::kRedirect);
  const RedirectInfo decoded =
      RedirectInfo::decode({frame.payload.data(), frame.payload.size()});
  EXPECT_EQ(decoded.host, info.host);
  EXPECT_EQ(decoded.port, info.port);
  EXPECT_EQ(decoded.token, info.token);
}

TEST(Frames, ManyFramesInOrder) {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  FrameWriter writer{sink};
  for (int i = 0; i < 50; ++i) {
    ByteVector payload(static_cast<std::size_t>(i) + 1,
                       static_cast<std::uint8_t>(i));
    writer.write_data({payload.data(), payload.size()});
  }
  writer.write_fin();
  FrameReader reader{std::make_shared<io::MemoryInputStream>(sink->take())};
  for (int i = 0; i < 50; ++i) {
    Frame frame = reader.read_frame();
    ASSERT_EQ(frame.type, FrameType::kData);
    EXPECT_EQ(frame.payload.size(), static_cast<std::size_t>(i) + 1);
    EXPECT_EQ(frame.payload[0], static_cast<std::uint8_t>(i));
  }
  EXPECT_EQ(reader.read_frame().type, FrameType::kFin);
}

// --- Per-core reactor pool ---------------------------------------------------

TEST(Reactor, PoolIsLazyAndRoundRobin) {
  EventLoopPool pool{4};
  EXPECT_EQ(pool.live_loops(), 0u);  // no loop (or thread) until first use
  EventLoop& a = pool.next();
  EXPECT_EQ(pool.live_loops(), 1u);
  EventLoop& b = pool.next();
  EXPECT_NE(&a, &b);  // round-robin spreads waiters across loops
  EXPECT_EQ(pool.live_loops(), 2u);
}

TEST(Reactor, LoopForFdIsStable) {
  EventLoopPool pool{4};
  EventLoop& first = pool.loop_for(7);
  // Same fd, same loop: concurrent waits on one fd share one epoll set.
  EXPECT_EQ(&pool.loop_for(7), &first);
}

TEST(Reactor, SocketWaitReadableProbesAndTimesOut) {
  ServerSocket server{0};
  Socket client = Socket::connect("127.0.0.1", server.port());
  Socket peer = server.accept();

  // Zero timeout is an instantaneous probe, not an unconditional false.
  EXPECT_FALSE(client.wait_readable(std::chrono::milliseconds{0}));
  EXPECT_FALSE(client.wait_readable(std::chrono::milliseconds{30}));
  const std::uint8_t token = 7;
  peer.write_all({&token, 1});
  EXPECT_TRUE(client.wait_readable(std::chrono::seconds{5}));
  EXPECT_TRUE(client.wait_readable(std::chrono::milliseconds{0}));
}

TEST(Reactor, FiberParkedInSocketReadDoesNotStallWorker) {
  ServerSocket server{0};
  Socket client = Socket::connect("127.0.0.1", server.port());
  Socket peer = server.accept();

  sched::SchedulerOptions options;
  options.mode = sched::SchedMode::kWorkSteal;
  options.workers = 1;
  sched::Scheduler scheduler{options};

  std::promise<std::size_t> read_result;
  std::promise<void> bystander_ran;
  scheduler.spawn(
      [&] {
        std::uint8_t b = 0;
        read_result.set_value(client.read_some({&b, 1}));
      },
      "parked-reader");
  scheduler.spawn([&] { bystander_ran.set_value(); }, "bystander");

  // With a single worker the bystander only runs if the blocked read
  // parks its fiber on the reactor instead of wedging the worker in
  // recv() -- the fiber-blind-transport regression.
  auto ran = bystander_ran.get_future();
  ASSERT_EQ(ran.wait_for(std::chrono::seconds{5}), std::future_status::ready);

  const std::uint8_t token = 42;
  peer.write_all({&token, 1});
  auto result = read_result.get_future();
  ASSERT_EQ(result.wait_for(std::chrono::seconds{5}),
            std::future_status::ready);
  EXPECT_EQ(result.get(), 1u);
  scheduler.shutdown();
}

TEST(Reactor, FiberParkedInSocketWriteDoesNotStallWorker) {
  ServerSocket server{0};
  Socket client = Socket::connect("127.0.0.1", server.port());
  Socket peer = server.accept();
  // Shrink the send buffer so a modest burst fills it; the peer never
  // reads, so write_all must park on writability.
  const int sndbuf = 4096;
  ASSERT_EQ(setsockopt(client.fd(), SOL_SOCKET, SO_SNDBUF, &sndbuf,
                       sizeof sndbuf),
            0);

  sched::SchedulerOptions options;
  options.mode = sched::SchedMode::kWorkSteal;
  options.workers = 1;
  sched::Scheduler scheduler{options};

  std::promise<void> write_done;
  std::promise<void> bystander_ran;
  const ByteVector burst(1u << 20, 0xAB);
  scheduler.spawn(
      [&] {
        client.write_all({burst.data(), burst.size()});
        write_done.set_value();
      },
      "parked-writer");
  scheduler.spawn([&] { bystander_ran.set_value(); }, "bystander");

  // The write-side twin of FiberParkedInSocketReadDoesNotStallWorker:
  // with one worker the bystander only runs if the full send buffer
  // parks the writing fiber on the reactor instead of wedging the worker
  // in send().
  auto ran = bystander_ran.get_future();
  ASSERT_EQ(ran.wait_for(std::chrono::seconds{5}), std::future_status::ready);

  std::jthread drainer{[&] {
    ByteVector sink(1u << 16);
    std::size_t total = 0;
    while (total < burst.size()) {
      const std::size_t n = peer.read_some({sink.data(), sink.size()});
      if (n == 0) break;
      total += n;
    }
  }};
  auto done = write_done.get_future();
  ASSERT_EQ(done.wait_for(std::chrono::seconds{10}),
            std::future_status::ready);
  scheduler.shutdown();
}

TEST(Reactor, FiberWaitReadableTimesOutWithoutStallingWorker) {
  ServerSocket server{0};
  Socket client = Socket::connect("127.0.0.1", server.port());
  Socket peer = server.accept();

  sched::SchedulerOptions options;
  options.mode = sched::SchedMode::kWorkSteal;
  options.workers = 1;
  sched::Scheduler scheduler{options};

  std::promise<bool> wait_result;
  std::promise<void> bystander_ran;
  scheduler.spawn(
      [&] {
        wait_result.set_value(
            client.wait_readable(std::chrono::milliseconds{200}));
      },
      "waiter");
  scheduler.spawn([&] { bystander_ran.set_value(); }, "bystander");

  auto ran = bystander_ran.get_future();
  ASSERT_EQ(ran.wait_for(std::chrono::seconds{5}), std::future_status::ready);
  auto result = wait_result.get_future();
  ASSERT_EQ(result.wait_for(std::chrono::seconds{5}),
            std::future_status::ready);
  EXPECT_FALSE(result.get());  // no data ever arrived: clean timeout
  scheduler.shutdown();
}

// --- Transport selection -----------------------------------------------------

TEST(Transport, MuxIsTheDefaultWithBlockingOptOut) {
  EXPECT_EQ(NetworkOptions{}.transport, TransportKind::kMux);

  unsetenv("DPN_TRANSPORT");
  EXPECT_EQ(NetworkOptions::from_env().transport, TransportKind::kMux);
  setenv("DPN_TRANSPORT", "blocking", 1);
  EXPECT_EQ(NetworkOptions::from_env().transport, TransportKind::kBlocking);
  setenv("DPN_TRANSPORT", "mux", 1);
  EXPECT_EQ(NetworkOptions::from_env().transport, TransportKind::kMux);
  setenv("DPN_TRANSPORT", "warp-drive", 1);  // unknown: warn, keep mux
  EXPECT_EQ(NetworkOptions::from_env().transport, TransportKind::kMux);
  unsetenv("DPN_TRANSPORT");
}

TEST(Frames, OverSocketEndToEnd) {
  ServerSocket server{0};
  std::jthread producer{[&] {
    auto peer = std::make_shared<Socket>(server.accept());
    FrameWriter writer{std::make_shared<SocketOutputStream>(peer)};
    writer.write_data(as_bytes(std::string{"one"}));
    writer.write_data(as_bytes(std::string{"two"}));
    writer.write_fin();
  }};
  auto client =
      std::make_shared<Socket>(Socket::connect("127.0.0.1", server.port()));
  FrameReader reader{std::make_shared<SocketInputStream>(client)};
  EXPECT_EQ(dpn::to_string(ByteSpan{reader.read_frame().payload.data(), 3}), "one");
  EXPECT_EQ(dpn::to_string(ByteSpan{reader.read_frame().payload.data(), 3}), "two");
  EXPECT_EQ(reader.read_frame().type, FrameType::kFin);
}

}  // namespace
}  // namespace dpn::net
