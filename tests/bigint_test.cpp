#include <gtest/gtest.h>

#include "bigint/bigint.hpp"
#include "io/memory.hpp"

namespace dpn::bigint {
namespace {

using I128 = __int128;

BigInt from_i128(I128 value) {
  const bool negative = value < 0;
  unsigned __int128 magnitude =
      negative ? static_cast<unsigned __int128>(-(value + 1)) + 1
               : static_cast<unsigned __int128>(value);
  BigInt out;
  // Compose from 62-bit chunks to stay inside int64 constructor range.
  BigInt shift{1};
  while (magnitude != 0) {
    out += shift * BigInt{static_cast<std::int64_t>(magnitude & 0x3fffffffffffffffULL)};
    magnitude >>= 62;
    shift *= BigInt{1} << 62;
  }
  return negative ? -out : out;
}

I128 to_i128(const BigInt& value) {
  I128 out = 0;
  for (std::size_t i = value.limbs().size(); i-- > 0;) {
    out = (out << 32) | value.limbs()[i];
  }
  return value.is_negative() ? -out : out;
}

TEST(BigInt, ZeroBasics) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_negative());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_decimal(), "0");
  EXPECT_EQ(zero.to_i64(), 0);
  EXPECT_EQ(zero, BigInt{0});
  EXPECT_EQ(-zero, zero);
}

TEST(BigInt, Int64RoundTrip) {
  for (const std::int64_t v :
       {0L, 1L, -1L, 42L, -4242L, INT64_MAX, INT64_MIN, INT64_MAX - 1,
        INT64_MIN + 1}) {
    EXPECT_EQ(BigInt{v}.to_i64(), v) << v;
  }
}

TEST(BigInt, U64Conversion) {
  BigInt big = BigInt{1} << 64;
  EXPECT_THROW(big.to_u64(), UsageError);
  EXPECT_EQ((big - BigInt{1}).to_u64(), ~0ULL);
  EXPECT_THROW(BigInt{-1}.to_u64(), UsageError);
}

TEST(BigInt, DecimalRoundTrip) {
  for (const std::string text :
       {"0", "1", "-1", "999999999999999999999999999999",
        "-123456789012345678901234567890123456789",
        "340282366920938463463374607431768211456"}) {
    EXPECT_EQ(BigInt::from_decimal(text).to_decimal(), text);
  }
}

TEST(BigInt, HexRoundTrip) {
  const BigInt v = BigInt::from_hex("0xdeadbeefcafebabe0123456789");
  EXPECT_EQ(v.to_hex(), "0xdeadbeefcafebabe0123456789");
  EXPECT_EQ(BigInt::from_hex(v.to_hex()), v);
  EXPECT_EQ(BigInt::from_hex("-0xff").to_i64(), -255);
  EXPECT_EQ(BigInt{}.to_hex(), "0x0");
}

TEST(BigInt, BadLiteralsThrow) {
  EXPECT_THROW(BigInt::from_decimal(""), UsageError);
  EXPECT_THROW(BigInt::from_decimal("12a"), UsageError);
  EXPECT_THROW(BigInt::from_hex("0x"), UsageError);
  EXPECT_THROW(BigInt::from_hex("0xg"), UsageError);
}

TEST(BigInt, ComparisonOrdering) {
  const BigInt a{-10}, b{-2}, c{0}, d{3}, e{300};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  EXPECT_LT(d, e);
  EXPECT_GT(e, a);
  EXPECT_EQ(d, BigInt{3});
  EXPECT_LE(d, BigInt{3});
  const BigInt big = BigInt{1} << 100;
  EXPECT_LT(e, big);
  EXPECT_LT(-big, a);
}

TEST(BigInt, ShiftRoundTrip) {
  const BigInt v = BigInt::from_decimal("12345678901234567890");
  for (const std::size_t bits : {1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ((v << bits) >> bits, v) << bits;
  }
  EXPECT_EQ((BigInt{1} << 128).bit_length(), 129u);
  EXPECT_EQ(BigInt{5} >> 10, BigInt{0});
}

TEST(BigInt, BitAccess) {
  const BigInt v = BigInt::from_hex("0x8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(64));
  EXPECT_EQ(v.bit_length(), 64u);
}

/// Oracle sweep: random 62-bit operands, all operators vs __int128.
class BigIntOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigIntOracle, MatchesInt128) {
  Xoshiro256 rng{GetParam()};
  for (int i = 0; i < 500; ++i) {
    const auto raw_a = static_cast<std::int64_t>(rng.next() >> 2);
    const auto raw_b = static_cast<std::int64_t>(rng.next() >> 2);
    const std::int64_t sa = (rng.next() & 1) ? -raw_a : raw_a;
    const std::int64_t sb = (rng.next() & 1) ? -raw_b : raw_b;
    const BigInt a = from_i128(sa);
    const BigInt b = from_i128(sb);
    EXPECT_EQ(to_i128(a + b), I128{sa} + I128{sb});
    EXPECT_EQ(to_i128(a - b), I128{sa} - I128{sb});
    EXPECT_EQ(to_i128(a * b), I128{sa} * I128{sb});
    if (sb != 0) {
      EXPECT_EQ(to_i128(a / b), I128{sa} / I128{sb});
      EXPECT_EQ(to_i128(a % b), I128{sa} % I128{sb});
    }
    EXPECT_EQ(a < b, sa < sb);
    EXPECT_EQ(a == b, sa == sb);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntOracle,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// Algebraic identities at sizes far beyond 128 bits (exercises Karatsuba
/// and the full Knuth-D path).
class BigIntAlgebra : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BigIntAlgebra, DivModReconstruction) {
  const std::size_t bits = GetParam();
  Xoshiro256 rng{bits * 1000003};
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::random_bits(rng, bits);
    BigInt b = BigInt::random_bits(rng, bits / 2 + 1);
    if (rng.next() & 1) a = -a;
    if (rng.next() & 1) b = -b;
    const auto [q, r] = BigInt::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.abs(), b.abs());
    if (!r.is_zero()) {
      EXPECT_EQ(r.is_negative(), a.is_negative());
    }
  }
}

TEST_P(BigIntAlgebra, MulCommutesAndDistributes) {
  const std::size_t bits = GetParam();
  Xoshiro256 rng{bits * 31337};
  for (int i = 0; i < 10; ++i) {
    const BigInt a = BigInt::random_bits(rng, bits);
    const BigInt b = BigInt::random_bits(rng, bits);
    const BigInt c = BigInt::random_bits(rng, bits / 3 + 1);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a + b) - b, a);
  }
}

TEST_P(BigIntAlgebra, IsqrtBrackets) {
  const std::size_t bits = GetParam();
  Xoshiro256 rng{bits * 99991};
  for (int i = 0; i < 10; ++i) {
    const BigInt n = BigInt::random_bits(rng, bits);
    const BigInt r = BigInt::isqrt(n);
    EXPECT_LE(r * r, n);
    EXPECT_GT((r + BigInt{1}) * (r + BigInt{1}), n);
  }
}

TEST_P(BigIntAlgebra, PerfectSquareDetection) {
  const std::size_t bits = GetParam();
  Xoshiro256 rng{bits * 7};
  for (int i = 0; i < 10; ++i) {
    const BigInt r = BigInt::random_bits(rng, bits / 2 + 2);
    const BigInt square = r * r;
    BigInt root;
    EXPECT_TRUE(BigInt::perfect_square(square, &root));
    EXPECT_EQ(root, r);
    EXPECT_FALSE(BigInt::perfect_square(square + BigInt{1}, nullptr) &&
                 BigInt::perfect_square(square + BigInt{2}, nullptr) &&
                 BigInt::perfect_square(square + BigInt{3}, nullptr));
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, BigIntAlgebra,
                         ::testing::Values(64, 96, 128, 256, 512, 1024, 2048,
                                           4096));

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt{1} / BigInt{0}, UsageError);
  EXPECT_THROW(BigInt::divmod(BigInt{1}, BigInt{}), UsageError);
}

TEST(BigInt, KnuthDAddBackCase) {
  // Exercise the rare D6 add-back path with a crafted dividend/divisor
  // (top limbs equal, second limbs maximal).
  const BigInt u = BigInt::from_hex("0x80000000fffffffe00000000");
  const BigInt v = BigInt::from_hex("0x80000000ffffffff");
  const auto [q, r] = BigInt::divmod(u, v);
  EXPECT_EQ(q * v + r, u);
  EXPECT_LT(r, v);
}

TEST(BigInt, PowSmallCases) {
  EXPECT_EQ(BigInt::pow(BigInt{2}, 10).to_i64(), 1024);
  EXPECT_EQ(BigInt::pow(BigInt{7}, 0).to_i64(), 1);
  EXPECT_EQ(BigInt::pow(BigInt{-3}, 3).to_i64(), -27);
  EXPECT_EQ(BigInt::pow(BigInt{10}, 30),
            BigInt::from_decimal("1000000000000000000000000000000"));
}

TEST(BigInt, ModPowMatchesNaive) {
  Xoshiro256 rng{77};
  for (int i = 0; i < 50; ++i) {
    const std::int64_t base = static_cast<std::int64_t>(rng.below(1000));
    const std::uint64_t exp = rng.below(20);
    const std::int64_t mod = 1 + static_cast<std::int64_t>(rng.below(999));
    std::int64_t expected = 1 % mod;
    for (std::uint64_t e = 0; e < exp; ++e) expected = expected * base % mod;
    EXPECT_EQ(BigInt::mod_pow(BigInt{base}, BigInt{(std::int64_t)exp},
                              BigInt{mod})
                  .to_i64(),
              expected);
  }
}

TEST(BigInt, ModPowFermat) {
  // 2^(p-1) = 1 mod p for prime p.
  const BigInt p = BigInt::from_decimal("1000000007");
  EXPECT_EQ(BigInt::mod_pow(BigInt{2}, p - BigInt{1}, p), BigInt{1});
}

TEST(BigInt, GcdProperties) {
  EXPECT_EQ(BigInt::gcd(BigInt{12}, BigInt{18}).to_i64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt{-12}, BigInt{18}).to_i64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt{0}, BigInt{5}).to_i64(), 5);
  const BigInt a = BigInt::from_decimal("123456789123456789");
  EXPECT_EQ(BigInt::gcd(a * BigInt{30}, a * BigInt{42}), a * BigInt{6});
}

TEST(BigInt, PrimalitySmallNumbers) {
  Xoshiro256 rng{5};
  const std::vector<int> primes{2,  3,  5,  7,  11, 13, 17, 19,
                                23, 29, 31, 37, 41, 97, 101};
  for (const int p : primes) {
    EXPECT_TRUE(BigInt::is_probable_prime(BigInt{p}, rng)) << p;
  }
  for (const int c : {0, 1, 4, 6, 9, 15, 21, 25, 49, 91, 100}) {
    EXPECT_FALSE(BigInt::is_probable_prime(BigInt{c}, rng)) << c;
  }
}

TEST(BigInt, PrimalityKnownLargePrime) {
  Xoshiro256 rng{6};
  // 2^127 - 1 is a Mersenne prime; 2^128 + 1 is composite (Fermat F7 lore:
  // actually 2^128+1 = 59649589127497217 * ...; known composite).
  const BigInt mersenne = (BigInt{1} << 127) - BigInt{1};
  EXPECT_TRUE(BigInt::is_probable_prime(mersenne, rng));
  const BigInt carmichael{561};  // classic Carmichael number
  EXPECT_FALSE(BigInt::is_probable_prime(carmichael, rng));
}

TEST(BigInt, RandomPrimeHasRequestedSize) {
  Xoshiro256 rng{8};
  for (const std::size_t bits : {16u, 48u, 128u}) {
    const BigInt p = BigInt::random_prime(rng, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(BigInt::is_probable_prime(p, rng));
  }
}

TEST(BigInt, RandomBelowUniformRange) {
  Xoshiro256 rng{10};
  const BigInt bound{1000};
  for (int i = 0; i < 200; ++i) {
    const BigInt v = BigInt::random_below(rng, bound);
    EXPECT_GE(v, BigInt{0});
    EXPECT_LT(v, bound);
  }
}

TEST(BigInt, WireRoundTrip) {
  Xoshiro256 rng{12};
  auto sink = std::make_shared<io::MemoryOutputStream>();
  io::DataOutputStream out{sink};
  std::vector<BigInt> values;
  for (const std::size_t bits : {0u, 1u, 33u, 512u, 1024u}) {
    BigInt v = bits == 0 ? BigInt{} : BigInt::random_bits(rng, bits);
    if (bits == 33) v = -v;
    values.push_back(v);
    v.write_to(out);
  }
  io::DataInputStream in{std::make_shared<io::MemoryInputStream>(sink->take())};
  for (const BigInt& expected : values) {
    EXPECT_EQ(BigInt::read_from(in), expected);
  }
}

TEST(BigInt, StreamInsertion) {
  std::ostringstream os;
  os << BigInt::from_decimal("-12345");
  EXPECT_EQ(os.str(), "-12345");
}

}  // namespace
}  // namespace dpn::bigint
