#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/network.hpp"
#include "io/data.hpp"
#include "io/memory.hpp"
#include "processes/basic.hpp"
#include "processes/merge.hpp"
#include "processes/router.hpp"
#include "support/rng.hpp"

/// Randomized property sweeps over the process library: components are
/// driven with generated inputs and compared against plain-code oracles.
namespace dpn::processes {
namespace {

using core::Network;

/// Feeds pre-serialized i64s into a channel from a vector, then closes.
void fill_channel(const std::shared_ptr<core::Channel>& channel,
                  const std::vector<std::int64_t>& values) {
  io::DataOutputStream out{channel->output()};
  for (const std::int64_t v : values) out.write_i64(v);
  channel->output()->close();
}

/// Sorted non-decreasing random stream.
std::vector<std::int64_t> random_sorted(Xoshiro256& rng, std::size_t max_len,
                                        bool strictly_increasing) {
  std::vector<std::int64_t> out;
  std::int64_t value = static_cast<std::int64_t>(rng.below(10));
  const std::size_t len = rng.below(max_len + 1);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(value);
    value += static_cast<std::int64_t>(
        strictly_increasing ? 1 + rng.below(5) : rng.below(5));
  }
  return out;
}

class MergeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergeFuzz, MatchesSortedUnionOracle) {
  Xoshiro256 rng{GetParam()};
  for (int round = 0; round < 20; ++round) {
    const std::size_t n_inputs = 2 + rng.below(4);  // 2..5 inputs
    std::vector<std::vector<std::int64_t>> streams;
    std::set<std::int64_t> expected_set;
    for (std::size_t i = 0; i < n_inputs; ++i) {
      streams.push_back(random_sorted(rng, 40, /*strictly=*/true));
      expected_set.insert(streams.back().begin(), streams.back().end());
    }

    Network network;
    std::vector<std::shared_ptr<core::ChannelInputStream>> ins;
    for (const auto& stream : streams) {
      auto channel = network.make_channel({.capacity = 4096});
      fill_channel(channel, stream);
      ins.push_back(channel->input());
    }
    auto out = network.make_channel({.capacity = 4096});
    auto sink = std::make_shared<CollectSink<std::int64_t>>();
    network.add(std::make_shared<OrderedMerge>(ins, out->output(),
                                               /*eliminate_duplicates=*/true));
    network.add(std::make_shared<Collect>(out->input(), sink));
    network.run();

    const std::vector<std::int64_t> expected{expected_set.begin(),
                                             expected_set.end()};
    EXPECT_EQ(sink->values(), expected) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeFuzz, ::testing::Values(11, 22, 33, 44));

class RouteFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouteFuzz, PartitionIsExactAndOrdered) {
  Xoshiro256 rng{GetParam()};
  for (int round = 0; round < 20; ++round) {
    const std::int64_t divisor = 2 + static_cast<std::int64_t>(rng.below(9));
    std::vector<std::int64_t> values;
    const std::size_t len = rng.below(100);
    for (std::size_t i = 0; i < len; ++i) {
      values.push_back(static_cast<std::int64_t>(rng.below(1000)) - 500);
    }

    Network network;
    auto in = network.make_channel({.capacity = 4096});
    auto hit = network.make_channel({.capacity = 4096});
    auto miss = network.make_channel({.capacity = 4096});
    fill_channel(in, values);
    auto hit_sink = std::make_shared<CollectSink<std::int64_t>>();
    auto miss_sink = std::make_shared<CollectSink<std::int64_t>>();
    network.add(std::make_shared<RouteByDivisibility>(
        in->input(), hit->output(), miss->output(), divisor));
    network.add(std::make_shared<Collect>(hit->input(), hit_sink));
    network.add(std::make_shared<Collect>(miss->input(), miss_sink));
    network.run();

    std::vector<std::int64_t> expected_hit, expected_miss;
    for (const std::int64_t v : values) {
      (v % divisor == 0 ? expected_hit : expected_miss).push_back(v);
    }
    EXPECT_EQ(hit_sink->values(), expected_hit);
    EXPECT_EQ(miss_sink->values(), expected_miss);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteFuzz, ::testing::Values(5, 6, 7));

ByteVector random_blob(Xoshiro256& rng, std::size_t max_len) {
  ByteVector blob(rng.below(max_len + 1));
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next());
  return blob;
}

class ScatterGatherFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScatterGatherFuzz, RoundRobinIsIdentityOnBlobs) {
  // Property: Scatter -> (per-lane Identity) -> Gather is the identity on
  // any blob sequence whose length is a multiple of the lane count, for
  // any worker count and blob sizes (including empty blobs).
  Xoshiro256 rng{GetParam()};
  for (int round = 0; round < 10; ++round) {
    const std::size_t lanes = 1 + rng.below(6);
    const std::size_t cycles = rng.below(20);
    std::vector<ByteVector> blobs;
    for (std::size_t i = 0; i < lanes * cycles; ++i) {
      blobs.push_back(random_blob(rng, 200));
    }

    Network network;
    auto in = network.make_channel({.capacity = 1 << 16});
    auto out = network.make_channel({.capacity = 1 << 16});
    {
      io::DataOutputStream writer{in->output()};
      for (const auto& blob : blobs) {
        writer.write_bytes({blob.data(), blob.size()});
      }
      in->output()->close();
    }
    std::vector<std::shared_ptr<core::ChannelOutputStream>> task_outs;
    std::vector<std::shared_ptr<core::ChannelInputStream>> result_ins;
    for (std::size_t i = 0; i < lanes; ++i) {
      auto lane = network.make_channel({.capacity = 1 << 16});
      task_outs.push_back(lane->output());
      result_ins.push_back(lane->input());
    }
    network.add(std::make_shared<Scatter>(in->input(), task_outs));
    network.add(std::make_shared<Gather>(result_ins, out->output()));
    network.start();

    io::DataInputStream reader{out->input()};
    for (std::size_t i = 0; i < blobs.size(); ++i) {
      EXPECT_EQ(reader.read_bytes(), blobs[i]) << "blob " << i;
    }
    out->input()->close();
    network.join();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScatterGatherFuzz,
                         ::testing::Values(100, 200));

class SelectFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelectFuzz, ReordersAnyArrivalOrderToTaskOrder) {
  // Drive Select directly with a synthetic arrival-order pair stream and
  // verify it reconstructs task order, for random worker counts and
  // random (valid) completion interleavings.
  Xoshiro256 rng{GetParam()};
  for (int round = 0; round < 20; ++round) {
    const std::size_t workers = 1 + rng.below(5);
    const std::size_t tasks = workers + rng.below(40);

    // Simulate the dispatch/completion dynamics: worker w holds a FIFO of
    // assigned tasks; each completion is a random worker with work
    // pending, which then receives the next undispatched task.
    std::vector<std::vector<std::size_t>> assigned(workers);
    std::size_t next_task = 0;
    for (; next_task < std::min(workers, tasks); ++next_task) {
      assigned[next_task].push_back(next_task);
    }
    struct Arrival {
      std::size_t worker;
      std::size_t task;
    };
    std::vector<Arrival> arrivals;
    std::vector<std::size_t> heads(workers, 0);
    while (arrivals.size() < tasks) {
      std::size_t w = rng.below(workers);
      bool found = false;
      for (std::size_t probe = 0; probe < workers; ++probe) {
        const std::size_t candidate = (w + probe) % workers;
        if (heads[candidate] < assigned[candidate].size()) {
          w = candidate;
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found);
      arrivals.push_back({w, assigned[w][heads[w]++]});
      if (next_task < tasks) assigned[w].push_back(next_task++);
    }

    Network network;
    auto pairs = network.make_channel({.capacity = 1 << 16});
    auto out = network.make_channel({.capacity = 1 << 16});
    {
      io::DataOutputStream writer{pairs->output()};
      for (const Arrival& arrival : arrivals) {
        writer.write_i64(static_cast<std::int64_t>(arrival.worker));
        // The blob payload encodes the task id.
        auto sink = std::make_shared<io::MemoryOutputStream>();
        io::DataOutputStream blob{sink};
        blob.write_i64(static_cast<std::int64_t>(arrival.task));
        const ByteVector bytes = sink->take();
        writer.write_bytes({bytes.data(), bytes.size()});
      }
      pairs->output()->close();
    }
    network.add(std::make_shared<Select>(pairs->input(), out->output(),
                                         workers));
    network.start();

    io::DataInputStream reader{out->input()};
    for (std::size_t expected = 0; expected < tasks; ++expected) {
      const ByteVector blob = reader.read_bytes();
      io::DataInputStream decoder{
          std::make_shared<io::MemoryInputStream>(blob)};
      EXPECT_EQ(decoder.read_i64(), static_cast<std::int64_t>(expected));
    }
    out->input()->close();
    network.join();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectFuzz, ::testing::Values(300, 301));

}  // namespace
}  // namespace dpn::processes
