#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "io/memory.hpp"

#include "core/network.hpp"
#include "io/data.hpp"
#include "processes/arith.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "processes/merge.hpp"
#include "processes/router.hpp"
#include "processes/sieve.hpp"

namespace dpn::processes {
namespace {

using core::Channel;
using core::MonitorOptions;
using core::Network;

std::vector<std::int64_t> first_fibonacci(std::size_t n) {
  std::vector<std::int64_t> fib;
  std::int64_t a = 1, b = 1;
  for (std::size_t i = 0; i < n; ++i) {
    fib.push_back(a);
    const std::int64_t next = a + b;
    a = b;
    b = next;
  }
  return fib;
}

std::vector<std::int64_t> primes_below(std::int64_t limit) {
  std::vector<std::int64_t> primes;
  for (std::int64_t candidate = 2; candidate < limit; ++candidate) {
    bool prime = true;
    for (std::int64_t p : primes) {
      if (p * p > candidate) break;
      if (candidate % p == 0) {
        prime = false;
        break;
      }
    }
    if (prime) primes.push_back(candidate);
  }
  return primes;
}

/// Builds the Figure 2/6 Fibonacci graph, collecting `count` numbers.
/// Mirrors the paper's Figure 6 code line by line.
void run_fibonacci(std::size_t count, std::size_t capacity,
                   std::vector<std::int64_t>* out) {
  Network network;
  auto ab = network.make_channel({.capacity = capacity, .label = "ab"});
  auto be = network.make_channel({.capacity = capacity, .label = "be"});
  auto cd = network.make_channel({.capacity = capacity, .label = "cd"});
  auto df = network.make_channel({.capacity = capacity, .label = "df"});
  auto ed = network.make_channel({.capacity = capacity, .label = "ed"});
  auto eg = network.make_channel({.capacity = capacity, .label = "eg"});
  auto fg = network.make_channel({.capacity = capacity, .label = "fg"});
  auto fh = network.make_channel({.capacity = capacity, .label = "fh"});
  auto gb = network.make_channel({.capacity = capacity, .label = "gb"});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();

  network.add(std::make_shared<Constant>(1, ab->output(), 1));
  network.add(
      std::make_shared<Cons>(ab->input(), gb->input(), be->output()));
  network.add(std::make_shared<Duplicate>(be->input(), ed->output(),
                                          eg->output()));
  network.add(std::make_shared<Add>(eg->input(), fg->input(), gb->output()));
  network.add(std::make_shared<Constant>(1, cd->output(), 1));
  network.add(
      std::make_shared<Cons>(cd->input(), ed->input(), df->output()));
  network.add(std::make_shared<Duplicate>(df->input(), fh->output(),
                                          fg->output()));
  network.add(std::make_shared<Collect>(fh->input(), sink,
                                        static_cast<long>(count)));
  network.run();
  *out = sink->values();
}

TEST(Fibonacci, FirstTwentyNumbers) {
  std::vector<std::int64_t> values;
  run_fibonacci(20, io::Pipe::kDefaultCapacity, &values);
  EXPECT_EQ(values, first_fibonacci(20));
}

TEST(Fibonacci, DeterminateAcrossCapacities) {
  // The cyclic graph must produce the same history at any buffer size
  // large enough to avoid artificial deadlock on the cycle.
  for (const std::size_t capacity : {32u, 64u, 256u, 4096u}) {
    std::vector<std::int64_t> values;
    run_fibonacci(15, capacity, &values);
    EXPECT_EQ(values, first_fibonacci(15)) << "capacity " << capacity;
  }
}

TEST(Fibonacci, SmallCapacityWithMonitor) {
  // With tiny channels the feedback cycle wedges on blocking writes; the
  // deadlock monitor grows them and the result is still exact (Section
  // 3.5 + [13]).
  Network network;
  const std::size_t capacity = 8;  // one element per channel
  auto ab = network.make_channel({.capacity = capacity, .label = "ab"});
  auto be = network.make_channel({.capacity = capacity, .label = "be"});
  auto cd = network.make_channel({.capacity = capacity, .label = "cd"});
  auto df = network.make_channel({.capacity = capacity, .label = "df"});
  auto ed = network.make_channel({.capacity = capacity, .label = "ed"});
  auto eg = network.make_channel({.capacity = capacity, .label = "eg"});
  auto fg = network.make_channel({.capacity = capacity, .label = "fg"});
  auto fh = network.make_channel({.capacity = capacity, .label = "fh"});
  auto gb = network.make_channel({.capacity = capacity, .label = "gb"});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();

  network.add(std::make_shared<Constant>(1, ab->output(), 1));
  network.add(std::make_shared<Cons>(ab->input(), gb->input(), be->output()));
  network.add(
      std::make_shared<Duplicate>(be->input(), ed->output(), eg->output()));
  network.add(std::make_shared<Add>(eg->input(), fg->input(), gb->output()));
  network.add(std::make_shared<Constant>(1, cd->output(), 1));
  network.add(std::make_shared<Cons>(cd->input(), ed->input(), df->output()));
  network.add(
      std::make_shared<Duplicate>(df->input(), fh->output(), fg->output()));
  network.add(std::make_shared<Collect>(fh->input(), sink, 20));
  network.enable_monitor(MonitorOptions{});
  network.run();
  EXPECT_EQ(sink->values(), first_fibonacci(20));
}

// --- Cons self-removal (Figures 9/10) ---------------------------------------

TEST(Cons, PrependsThenSplicesOut) {
  Network network;
  auto init = network.make_channel({.capacity = 64, .label = "init"});
  auto rest = network.make_channel({.capacity = 64, .label = "rest"});
  auto out = network.make_channel({.capacity = 64, .label = "out"});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();

  auto cons = std::make_shared<Cons>(init->input(), rest->input(),
                                     out->output());
  network.add(std::make_shared<Constant>(99, init->output(), 1));
  network.add(std::make_shared<Sequence>(0, rest->output(), 50));
  network.add(cons);
  network.add(std::make_shared<Collect>(out->input(), sink));
  network.run();

  EXPECT_TRUE(cons->spliced_out());
  const auto values = sink->values();
  ASSERT_EQ(values.size(), 51u);
  EXPECT_EQ(values[0], 99);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(values[i + 1], i);
}

TEST(Cons, NoDataLostWhenSplicingUnderLoad) {
  // The rest-producer races ahead, stuffing the channel before the splice
  // happens; every element must still arrive exactly once, in order.
  Network network;
  auto init = network.make_channel({.capacity = 8, .label = "init"});
  auto rest = network.make_channel({.capacity = 4096, .label = "rest"});
  auto out = network.make_channel({.capacity = 8, .label = "out"});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();

  network.add(std::make_shared<Constant>(-1, init->output(), 1));
  network.add(std::make_shared<Sequence>(0, rest->output(), 2000));
  network.add(std::make_shared<Cons>(init->input(), rest->input(),
                                     out->output()));
  network.add(std::make_shared<Collect>(out->input(), sink));
  network.run();

  const auto values = sink->values();
  ASSERT_EQ(values.size(), 2001u);
  EXPECT_EQ(values[0], -1);
  for (int i = 0; i < 2000; ++i) EXPECT_EQ(values[i + 1], i);
}

TEST(Cons, DisabledSelfRemovalStillCorrect) {
  Network network;
  auto init = network.make_channel({.capacity = 64});
  auto rest = network.make_channel({.capacity = 64});
  auto out = network.make_channel({.capacity = 64});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto cons = std::make_shared<Cons>(init->input(), rest->input(),
                                     out->output(), /*self_remove=*/false);
  network.add(std::make_shared<Constant>(7, init->output(), 1));
  network.add(std::make_shared<Sequence>(0, rest->output(), 10));
  network.add(cons);
  network.add(std::make_shared<Collect>(out->input(), sink));
  network.run();
  EXPECT_FALSE(cons->spliced_out());
  EXPECT_EQ(sink->size(), 11u);
}

// --- Sieve of Eratosthenes (Figures 7/8) -------------------------------------

TEST(Sieve, AllPrimesBelowLimit) {
  // Termination mode 2 (Section 3.4): the Sequence stops at 100; the
  // sieve drains and every process terminates with all data consumed.
  Network network;
  auto numbers = network.make_channel({.capacity = 64, .label = "numbers"});
  auto primes = network.make_channel({.capacity = 64, .label = "primes"});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto sift = std::make_shared<Sift>(numbers->input(), primes->output());
  network.add(std::make_shared<Sequence>(2, numbers->output(), 99));  // 2..100
  network.add(sift);
  network.add(std::make_shared<Collect>(primes->input(), sink));
  network.run();
  EXPECT_EQ(sink->values(), primes_below(101));
  EXPECT_EQ(sift->filters_inserted(), primes_below(101).size());
}

TEST(Sieve, FirstHundredPrimes) {
  // Termination mode 1: the consumer imposes the limit; the unbounded
  // Sequence upstream is killed by the close cascade.
  Network network;
  auto numbers = network.make_channel({.capacity = 256, .label = "numbers"});
  auto primes = network.make_channel({.capacity = 256, .label = "primes"});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.add(std::make_shared<Sequence>(2, numbers->output()));  // unbounded
  network.add(std::make_shared<Sift>(numbers->input(), primes->output()));
  network.add(std::make_shared<Collect>(primes->input(), sink, 100));
  network.run();
  const auto expected = primes_below(542);  // first 100 primes end at 541
  ASSERT_EQ(sink->size(), 100u);
  EXPECT_EQ(sink->values(),
            std::vector<std::int64_t>(expected.begin(), expected.begin() + 100));
}

TEST(Sieve, RecursiveDefinitionMatchesIterative) {
  // Figure 7's recursive Sift: each prime spawns a Modulo and a fresh
  // Sift, and the old one steps aside.  Same primes, same order.
  Network network;
  auto numbers = network.make_channel({.capacity = 256, .label = "numbers"});
  auto primes = network.make_channel({.capacity = 256, .label = "primes"});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.add(std::make_shared<Sequence>(2, numbers->output(), 199));
  network.add(
      std::make_shared<RecursiveSift>(numbers->input(), primes->output()));
  network.add(std::make_shared<Collect>(primes->input(), sink));
  network.run();
  EXPECT_EQ(sink->values(), primes_below(201));
}

TEST(Sieve, RecursiveWithConsumerLimit) {
  // Termination mode 1 through a chain of self-replaced processes.
  Network network;
  auto numbers = network.make_channel({.capacity = 256});
  auto primes = network.make_channel({.capacity = 256});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.add(std::make_shared<Sequence>(2, numbers->output()));  // unbounded
  network.add(
      std::make_shared<RecursiveSift>(numbers->input(), primes->output()));
  network.add(std::make_shared<Collect>(primes->input(), sink, 40));
  network.run();
  const auto expected = primes_below(174);  // first 40 primes end at 173
  ASSERT_EQ(sink->size(), 40u);
  EXPECT_EQ(sink->values(), std::vector<std::int64_t>(expected.begin(),
                                                      expected.begin() + 40));
}

// --- Newton's method (Figure 11) ----------------------------------------------

TEST(Newton, SquareRootConverges) {
  // r_n = (x/r_{n-1} + r_{n-1}) / 2, terminating when the estimate stops
  // changing; the Guard passes exactly one value.
  const double x = 2.0;
  Network network;
  auto xs = network.make_channel({.capacity = 64, .label = "x"});
  auto r_init = network.make_channel({.capacity = 64, .label = "r0"});
  auto r_feedback = network.make_channel({.capacity = 4096, .label = "rfb"});
  auto r = network.make_channel({.capacity = 64, .label = "r"});
  auto r_for_div = network.make_channel({.capacity = 64});
  auto r_for_avg = network.make_channel({.capacity = 64});
  auto r_for_eq = network.make_channel({.capacity = 64});
  auto quotient = network.make_channel({.capacity = 64});
  auto r_next = network.make_channel({.capacity = 64});
  auto next_dup1 = network.make_channel({.capacity = 64});   // feedback copy
  auto next_dup2 = network.make_channel({.capacity = 64});   // to Equal
  auto next_dup3 = network.make_channel({.capacity = 64});   // to Guard data
  auto control = network.make_channel({.capacity = 64});
  auto result = network.make_channel({.capacity = 64});
  auto sink = std::make_shared<CollectSink<double>>();

  network.add(std::make_shared<ConstantF64>(x, xs->output()));
  network.add(std::make_shared<ConstantF64>(1.0, r_init->output(), 1));
  network.add(std::make_shared<Cons>(r_init->input(), r_feedback->input(),
                                     r->output()));
  network.add(std::make_shared<Duplicate>(
      r->input(), std::vector{r_for_div->output(), r_for_avg->output(),
                              r_for_eq->output()}));
  network.add(std::make_shared<Divide>(xs->input(), r_for_div->input(),
                                       quotient->output()));
  network.add(std::make_shared<Average>(quotient->input(), r_for_avg->input(),
                                        r_next->output()));
  network.add(std::make_shared<Duplicate>(
      r_next->input(), std::vector{next_dup1->output(), next_dup2->output(),
                                   next_dup3->output()}));
  network.add(std::make_shared<Identity>(next_dup1->input(),
                                         r_feedback->output()));
  network.add(std::make_shared<Equal>(next_dup2->input(), r_for_eq->input(),
                                      control->output()));
  network.add(std::make_shared<Guard>(next_dup3->input(), control->input(),
                                      result->output(),
                                      /*stop_after_pass=*/true));
  network.add(std::make_shared<CollectF64>(result->input(), sink));
  network.run();

  ASSERT_EQ(sink->size(), 1u);
  EXPECT_DOUBLE_EQ(sink->values()[0], std::sqrt(2.0));
}

// --- Hamming (Figure 12) --------------------------------------------------------

TEST(Hamming, SequenceUnderDeadlockMonitor) {
  // The unbounded 2^k 3^m 5^n graph: every merge output feeds 2-3 new
  // elements back, so fixed-capacity channels always wedge eventually;
  // the monitor grows them until the consumer's limit stops the run.
  Network network;
  auto out = network.make_channel({.capacity = 64, .label = "out"});
  auto seed = network.make_channel({.capacity = 64, .label = "seed"});
  auto stream = network.make_channel({.capacity = 64, .label = "stream"});
  auto to_dup = network.make_channel({.capacity = 64});
  auto c2 = network.make_channel({.capacity = 64});
  auto c3 = network.make_channel({.capacity = 64});
  auto c5 = network.make_channel({.capacity = 64});
  auto s2 = network.make_channel({.capacity = 64});
  auto s3 = network.make_channel({.capacity = 64});
  auto s5 = network.make_channel({.capacity = 64});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();

  network.add(std::make_shared<Constant>(1, seed->output(), 1));
  network.add(std::make_shared<Cons>(seed->input(), out->input(),
                                     stream->output()));
  network.add(std::make_shared<Duplicate>(
      stream->input(),
      std::vector{to_dup->output(), c2->output(), c3->output(),
                  c5->output()}));
  network.add(std::make_shared<Scale>(c2->input(), s2->output(), 2));
  network.add(std::make_shared<Scale>(c3->input(), s3->output(), 3));
  network.add(std::make_shared<Scale>(c5->input(), s5->output(), 5));
  network.add(std::make_shared<OrderedMerge>(
      std::vector{s2->input(), s3->input(), s5->input()}, out->output()));
  network.add(std::make_shared<Collect>(to_dup->input(), sink, 30));
  network.enable_monitor(MonitorOptions{});
  network.run();

  const std::vector<std::int64_t> expected{1,  2,  3,  4,  5,  6,  8,  9,
                                           10, 12, 15, 16, 18, 20, 24, 25,
                                           27, 30, 32, 36, 40, 45, 48, 50,
                                           54, 60, 64, 72, 75, 80};
  EXPECT_EQ(sink->values(), expected);
}

// --- Routers -------------------------------------------------------------------

ByteVector blob_of(std::int64_t value) {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  io::DataOutputStream data{sink};
  data.write_i64(value);
  return sink->take();
}

std::int64_t blob_value(const ByteVector& blob) {
  io::DataInputStream data{std::make_shared<io::MemoryInputStream>(blob)};
  return data.read_i64();
}

/// Writes numbered blobs into a channel.
class BlobSource final : public IterativeProcess {
 public:
  BlobSource(std::shared_ptr<ChannelOutputStream> out, long count)
      : IterativeProcess(count) {
    track_output(std::move(out));
  }
  std::string type_name() const override { return "test.BlobSource"; }
  void write_fields(serial::ObjectOutputStream&) const override {}

 protected:
  void step() override {
    io::DataOutputStream out{output(0)};
    const ByteVector blob = blob_of(next_++);
    out.write_bytes({blob.data(), blob.size()});
  }

 private:
  std::int64_t next_ = 0;
};

/// Collects numbered blobs from a channel.
class BlobSink final : public IterativeProcess {
 public:
  BlobSink(std::shared_ptr<ChannelInputStream> in,
           std::shared_ptr<CollectSink<std::int64_t>> sink)
      : sink_(std::move(sink)) {
    track_input(std::move(in));
  }
  std::string type_name() const override { return "test.BlobSink"; }
  void write_fields(serial::ObjectOutputStream&) const override {}

 protected:
  void step() override {
    io::DataInputStream in{input(0)};
    sink_->push(blob_value(in.read_bytes()));
  }

 private:
  std::shared_ptr<CollectSink<std::int64_t>> sink_;
};

TEST(ScatterGather, RoundRobinOrderPreserved) {
  constexpr std::size_t kWorkers = 4;
  constexpr long kBlobs = 40;
  Network network;
  auto in = network.make_channel({.capacity = 4096});
  auto out = network.make_channel({.capacity = 4096});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();

  std::vector<std::shared_ptr<core::ChannelOutputStream>> task_outs;
  std::vector<std::shared_ptr<core::ChannelInputStream>> result_ins;
  for (std::size_t i = 0; i < kWorkers; ++i) {
    auto tasks = network.make_channel({.capacity = 4096});
    auto results = network.make_channel({.capacity = 4096});
    network.add(
        std::make_shared<Identity>(tasks->input(), results->output()));
    task_outs.push_back(tasks->output());
    result_ins.push_back(results->input());
  }
  network.add(std::make_shared<BlobSource>(in->output(), kBlobs));
  network.add(std::make_shared<Scatter>(in->input(), task_outs));
  network.add(std::make_shared<Gather>(result_ins, out->output()));
  network.add(std::make_shared<BlobSink>(out->input(), sink));
  network.run();

  const auto values = sink->values();
  ASSERT_EQ(values.size(), static_cast<std::size_t>(kBlobs));
  for (long i = 0; i < kBlobs; ++i) EXPECT_EQ(values[i], i);
}

TEST(Direct, RoutesByIndexStream) {
  Network network;
  auto in = network.make_channel({.capacity = 4096});
  auto order = network.make_channel({.capacity = 4096});
  auto out0 = network.make_channel({.capacity = 4096});
  auto out1 = network.make_channel({.capacity = 4096});
  auto sink0 = std::make_shared<CollectSink<std::int64_t>>();
  auto sink1 = std::make_shared<CollectSink<std::int64_t>>();

  network.add(std::make_shared<BlobSource>(in->output(), 6));
  // Route blobs 0..5 to outputs 1,0,0,1,1,0.
  {
    io::DataOutputStream idx{order->output()};
    for (const std::int64_t i : {1, 0, 0, 1, 1, 0}) idx.write_i64(i);
    order->output()->close();
  }
  network.add(std::make_shared<Direct>(
      in->input(), order->input(),
      std::vector{out0->output(), out1->output()}));
  network.add(std::make_shared<BlobSink>(out0->input(), sink0));
  network.add(std::make_shared<BlobSink>(out1->input(), sink1));
  network.run();

  EXPECT_EQ(sink0->values(), (std::vector<std::int64_t>{1, 2, 5}));
  EXPECT_EQ(sink1->values(), (std::vector<std::int64_t>{0, 3, 4}));
}

TEST(Direct, OutOfRangeIndexStopsCleanly) {
  Network network;
  auto in = network.make_channel({.capacity = 4096});
  auto order = network.make_channel({.capacity = 4096});
  auto out0 = network.make_channel({.capacity = 4096});
  auto sink0 = std::make_shared<CollectSink<std::int64_t>>();
  network.add(std::make_shared<BlobSource>(in->output(), 2));
  {
    io::DataOutputStream idx{order->output()};
    idx.write_i64(0);
    idx.write_i64(5);  // out of range
    order->output()->close();
  }
  network.add(std::make_shared<Direct>(in->input(), order->input(),
                                       std::vector{out0->output()}));
  network.add(std::make_shared<BlobSink>(out0->input(), sink0));
  network.run();  // Direct stops with an IoError; graph still terminates
  EXPECT_EQ(sink0->values(), (std::vector<std::int64_t>{0}));
}

TEST(TurnstileSelect, IndexedMergeReordersToTaskOrder) {
  // Manual MetaDynamic core: two "workers" with wildly different delays.
  // The turnstile sees results in completion order, but the Select must
  // deliver them in task order.
  constexpr long kTasks = 20;
  Network network;
  auto in = network.make_channel({.capacity = 4096});
  auto merged = network.make_channel({.capacity = 4096});
  auto tags = network.make_channel({.capacity = 4096});
  auto prefix = network.make_channel({.capacity = 4096});
  auto index = network.make_channel({.capacity = 4096});
  auto out = network.make_channel({.capacity = 4096});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();

  /// Identity with an artificial per-blob delay.
  class SlowIdentity final : public IterativeProcess {
   public:
    SlowIdentity(std::shared_ptr<ChannelInputStream> in,
                 std::shared_ptr<ChannelOutputStream> out, int delay_ms)
        : delay_ms_(delay_ms) {
      track_input(std::move(in));
      track_output(std::move(out));
    }
    std::string type_name() const override { return "test.SlowIdentity"; }
    void write_fields(serial::ObjectOutputStream&) const override {}

   protected:
    void step() override {
      io::DataInputStream in{input(0)};
      const ByteVector blob = in.read_bytes();
      std::this_thread::sleep_for(std::chrono::milliseconds{delay_ms_});
      io::DataOutputStream out{output(0)};
      out.write_bytes({blob.data(), blob.size()});
    }

   private:
    int delay_ms_;
  };

  std::vector<std::shared_ptr<core::ChannelOutputStream>> task_outs;
  std::vector<std::shared_ptr<core::ChannelInputStream>> result_ins;
  const int delays[] = {7, 0};  // worker 0 is much slower
  for (std::size_t i = 0; i < 2; ++i) {
    auto tasks = network.make_channel({.capacity = 4096});
    auto results = network.make_channel({.capacity = 4096});
    network.add(std::make_shared<SlowIdentity>(tasks->input(),
                                               results->output(), delays[i]));
    task_outs.push_back(tasks->output());
    result_ins.push_back(results->input());
  }

  network.add(std::make_shared<BlobSource>(in->output(), kTasks));
  network.add(std::make_shared<Turnstile>(result_ins, merged->output(),
                                          tags->output()));
  network.add(std::make_shared<Sequence>(0, prefix->output(), 2));
  network.add(std::make_shared<Cons>(prefix->input(), tags->input(),
                                     index->output()));
  network.add(std::make_shared<Direct>(in->input(), index->input(),
                                       task_outs));
  network.add(std::make_shared<Select>(merged->input(), out->output(), 2));
  network.add(std::make_shared<BlobSink>(out->input(), sink));
  network.run();

  const auto values = sink->values();
  ASSERT_EQ(values.size(), static_cast<std::size_t>(kTasks));
  for (long i = 0; i < kTasks; ++i) {
    EXPECT_EQ(values[i], i);  // task order, not completion order
  }
}

TEST(OrderedMerge, MergesAndDeduplicates) {
  Network network;
  auto a = network.make_channel({.capacity = 4096});
  auto b = network.make_channel({.capacity = 4096});
  auto out = network.make_channel({.capacity = 4096});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  {
    io::DataOutputStream da{a->output()};
    for (const std::int64_t v : {1, 3, 5, 7}) da.write_i64(v);
    a->output()->close();
    io::DataOutputStream db{b->output()};
    for (const std::int64_t v : {1, 2, 3, 8}) db.write_i64(v);
    b->output()->close();
  }
  network.add(std::make_shared<OrderedMerge>(
      std::vector{a->input(), b->input()}, out->output()));
  network.add(std::make_shared<Collect>(out->input(), sink));
  network.run();
  EXPECT_EQ(sink->values(), (std::vector<std::int64_t>{1, 2, 3, 5, 7, 8}));
}

TEST(Guard, DiscardsUntilControlTrue) {
  Network network;
  auto data = network.make_channel({.capacity = 4096});
  auto control = network.make_channel({.capacity = 4096});
  auto out = network.make_channel({.capacity = 4096});
  auto sink = std::make_shared<CollectSink<double>>();
  {
    io::DataOutputStream d{data->output()};
    for (const double v : {1.0, 2.0, 3.0, 4.0}) d.write_f64(v);
    data->output()->close();
    io::DataOutputStream c{control->output()};
    for (const bool b : {false, false, true, false}) c.write_bool(b);
    control->output()->close();
  }
  network.add(std::make_shared<Guard>(data->input(), control->input(),
                                      out->output(), true));
  network.add(std::make_shared<CollectF64>(out->input(), sink));
  network.run();
  EXPECT_EQ(sink->values(), (std::vector<double>{3.0}));
}

TEST(Scale, MultipliesElements) {
  Network network;
  auto in = network.make_channel({.capacity = 4096});
  auto out = network.make_channel({.capacity = 4096});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.add(std::make_shared<Sequence>(1, in->output(), 5));
  network.add(std::make_shared<Scale>(in->input(), out->output(), 3));
  network.add(std::make_shared<Collect>(out->input(), sink));
  network.run();
  EXPECT_EQ(sink->values(), (std::vector<std::int64_t>{3, 6, 9, 12, 15}));
}

TEST(Duplicate, ThreeCopies) {
  Network network;
  auto in = network.make_channel({.capacity = 4096});
  auto o1 = network.make_channel({.capacity = 4096});
  auto o2 = network.make_channel({.capacity = 4096});
  auto o3 = network.make_channel({.capacity = 4096});
  auto s1 = std::make_shared<CollectSink<std::int64_t>>();
  auto s2 = std::make_shared<CollectSink<std::int64_t>>();
  auto s3 = std::make_shared<CollectSink<std::int64_t>>();
  network.add(std::make_shared<Sequence>(0, in->output(), 10));
  network.add(std::make_shared<Duplicate>(
      in->input(), std::vector{o1->output(), o2->output(), o3->output()}));
  network.add(std::make_shared<Collect>(o1->input(), s1));
  network.add(std::make_shared<Collect>(o2->input(), s2));
  network.add(std::make_shared<Collect>(o3->input(), s3));
  network.run();
  EXPECT_EQ(s1->values(), s2->values());
  EXPECT_EQ(s2->values(), s3->values());
  EXPECT_EQ(s1->size(), 10u);
}

}  // namespace
}  // namespace dpn::processes
