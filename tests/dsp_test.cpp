#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/network.hpp"
#include "dist/ship.hpp"
#include "dsp/beam.hpp"
#include "dsp/fft.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"

namespace dpn::dsp {
namespace {

using core::Network;
using processes::CollectF64;
using processes::CollectSink;
using processes::Duplicate;

// --- FFT -----------------------------------------------------------------------

TEST(Fft, PowerOfTwoCheck) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> data(12);
  EXPECT_THROW(fft(data), UsageError);
}

TEST(Fft, ImpulseIsFlat) {
  std::vector<Complex> data(16, Complex{0.0, 0.0});
  data[0] = Complex{1.0, 0.0};
  fft(data);
  for (const Complex& bin : data) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, PureToneLandsInItsBin) {
  constexpr std::size_t kN = 64;
  constexpr std::size_t kBin = 5;
  std::vector<Complex> data(kN);
  for (std::size_t t = 0; t < kN; ++t) {
    const double angle = 2.0 * std::numbers::pi * kBin *
                         static_cast<double>(t) / kN;
    data[t] = Complex{std::cos(angle), 0.0};
  }
  fft(data);
  for (std::size_t k = 0; k < kN; ++k) {
    const double magnitude = std::abs(data[k]);
    if (k == kBin || k == kN - kBin) {
      EXPECT_NEAR(magnitude, kN / 2.0, 1e-9) << k;
    } else {
      EXPECT_NEAR(magnitude, 0.0, 1e-9) << k;
    }
  }
}

class FftOracle : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftOracle, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  Xoshiro256 rng{n};
  std::vector<Complex> data(n);
  for (auto& value : data) {
    value = Complex{rng.unit() - 0.5, rng.unit() - 0.5};
  }
  std::vector<Complex> fast = data;
  fft(fast);
  const std::vector<Complex> slow = naive_dft(data);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(fast[k] - slow[k]), 0.0, 1e-9) << k;
  }
}

TEST_P(FftOracle, InverseRoundTrip) {
  const std::size_t n = GetParam();
  Xoshiro256 rng{n * 3 + 1};
  std::vector<Complex> data(n);
  for (auto& value : data) {
    value = Complex{rng.unit() - 0.5, rng.unit() - 0.5};
  }
  std::vector<Complex> transformed = data;
  fft(transformed);
  ifft(transformed);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(transformed[i] - data[i]), 0.0, 1e-10);
  }
}

TEST_P(FftOracle, ParsevalHolds) {
  const std::size_t n = GetParam();
  Xoshiro256 rng{n * 7 + 5};
  std::vector<Complex> data(n);
  double time_energy = 0.0;
  for (auto& value : data) {
    value = Complex{rng.unit() - 0.5, 0.0};
    time_energy += std::norm(value);
  }
  fft(data);
  double freq_energy = 0.0;
  for (const Complex& bin : data) freq_energy += std::norm(bin);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-8 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftOracle,
                         ::testing::Values(1, 2, 4, 8, 32, 128, 1024));

TEST(Fft, HannWindowShape) {
  const auto window = hann_window(64);
  EXPECT_NEAR(window[0], 0.0, 1e-12);
  EXPECT_NEAR(window[32], 1.0, 1e-12);  // midpoint of a 64-point Hann
  for (std::size_t i = 1; i < 32; ++i) EXPECT_GT(window[i], window[i - 1]);
}

TEST(Fft, PeakBinFindsTone) {
  constexpr std::size_t kN = 128;
  std::vector<double> frame(kN);
  for (std::size_t t = 0; t < kN; ++t) {
    frame[t] = std::sin(2.0 * std::numbers::pi * 9.0 *
                        static_cast<double>(t) / kN);
  }
  EXPECT_EQ(peak_bin(frame), 9u);
}

// --- Steering geometry ------------------------------------------------------------

TEST(Steering, BroadsideNeedsNoDelays) {
  const auto delays = steering_delays(8, 2.0, 0.0);
  for (const auto d : delays) EXPECT_EQ(d, 0u);
}

TEST(Steering, PositiveBearingDelaysGrowAlongArray) {
  const auto delays = steering_delays(6, 2.0, 0.5);
  EXPECT_EQ(delays[0], 0u);
  for (std::size_t i = 1; i < delays.size(); ++i) {
    EXPECT_GE(delays[i], delays[i - 1]);
  }
  EXPECT_GT(delays.back(), 0u);
}

TEST(Steering, NegativeBearingMirrors) {
  const auto pos = steering_delays(6, 2.0, 0.4);
  const auto neg = steering_delays(6, 2.0, -0.4);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    EXPECT_EQ(pos[i], neg[pos.size() - 1 - i]);
  }
}

// --- Beamforming network ------------------------------------------------------------

/// Runs an S-sensor array observing a wave from `true_bearing` through a
/// bank of beams; returns each beam's average spectral power.
std::vector<double> run_beam_bank(double true_bearing,
                                  const std::vector<double>& bearings,
                                  double noise) {
  constexpr std::size_t kSensors = 8;
  constexpr double kSpacing = 3.0;       // samples of travel per sensor
  constexpr double kFrequency = 1.0 / 16.0;  // cycles per sample
  constexpr std::size_t kFrame = 64;
  constexpr std::size_t kBin = 4;        // kFrequency * kFrame
  constexpr long kFrames = 8;
  constexpr long kSamples = (kFrames + 2) * static_cast<long>(kFrame) + 64;

  Network network;
  const auto arrivals = arrival_delays(kSensors, kSpacing, true_bearing);

  // Sensor sources, each duplicated to every beam.
  std::vector<std::vector<std::shared_ptr<core::ChannelInputStream>>>
      taps(bearings.size());
  for (std::size_t s = 0; s < kSensors; ++s) {
    auto raw = network.make_channel({.capacity = 4096});
    network.add(std::make_shared<PlaneWaveSource>(
        raw->output(), kFrequency, arrivals[s], noise, 100 + s, kSamples));
    std::vector<std::shared_ptr<core::ChannelOutputStream>> copies;
    for (std::size_t b = 0; b < bearings.size(); ++b) {
      auto ch = network.make_channel({.capacity = 4096});
      copies.push_back(ch->output());
      taps[b].push_back(ch->input());
    }
    network.add(std::make_shared<Duplicate>(raw->input(), copies));
  }

  // One delay-and-sum + spectral-power chain per steered beam.
  std::vector<std::shared_ptr<CollectSink<double>>> sinks;
  for (std::size_t b = 0; b < bearings.size(); ++b) {
    auto summed = network.make_channel({.capacity = 4096});
    auto power = network.make_channel({.capacity = 4096});
    network.add(std::make_shared<DelaySum>(
        taps[b], summed->output(),
        steering_delays(kSensors, kSpacing, bearings[b])));
    network.add(std::make_shared<SpectralPower>(summed->input(),
                                                power->output(), kFrame,
                                                kBin));
    auto sink = std::make_shared<CollectSink<double>>();
    network.add(std::make_shared<CollectF64>(power->input(), sink, kFrames));
    sinks.push_back(sink);
  }
  network.run();

  std::vector<double> averages;
  for (const auto& sink : sinks) {
    const auto values = sink->values();
    double total = 0.0;
    for (const double v : values) total += v;
    averages.push_back(values.empty() ? 0.0
                                      : total /
                                            static_cast<double>(values.size()));
  }
  return averages;
}

TEST(Beamformer, FindsSourceBearing) {
  const std::vector<double> bearings{-0.7, -0.35, 0.0, 0.35, 0.7};
  const double true_bearing = 0.35;
  const auto powers = run_beam_bank(true_bearing, bearings, /*noise=*/0.1);
  ASSERT_EQ(powers.size(), bearings.size());
  std::size_t best = 0;
  for (std::size_t b = 1; b < powers.size(); ++b) {
    if (powers[b] > powers[best]) best = b;
  }
  EXPECT_EQ(bearings[best], true_bearing);
  // The matched beam dominates beams pointed well away from the source
  // (adjacent beams sit on the main lobe's shoulder, so they are only
  // required to lose, not to collapse).
  for (std::size_t b = 0; b < powers.size(); ++b) {
    if (bearings[b] == true_bearing) continue;
    EXPECT_GT(powers[best], powers[b]) << "beam " << bearings[b];
    if (std::abs(bearings[b] - true_bearing) > 0.5) {
      EXPECT_GT(powers[best], 1.5 * powers[b]) << "beam " << bearings[b];
    }
  }
}

TEST(Beamformer, BroadsideSource) {
  const std::vector<double> bearings{-0.5, 0.0, 0.5};
  const auto powers = run_beam_bank(0.0, bearings, 0.05);
  EXPECT_GT(powers[1], powers[0]);
  EXPECT_GT(powers[1], powers[2]);
}

TEST(Beamformer, DeterminateAcrossRuns) {
  const std::vector<double> bearings{-0.4, 0.0, 0.4};
  const auto a = run_beam_bank(0.4, bearings, 0.2);
  const auto b = run_beam_bank(0.4, bearings, 0.2);
  EXPECT_EQ(a, b);  // bit-identical: noisy input, but a determinate graph
}

TEST(DelaySum, AlignsIntegerDelays) {
  // Two inputs carrying 0..N and a delayed copy; with the matching
  // steering the sum is exactly 2x the aligned stream.
  Network network;
  auto a = network.make_channel({.capacity = 4096});
  auto b = network.make_channel({.capacity = 4096});
  auto out = network.make_channel({.capacity = 4096});
  auto sink = std::make_shared<CollectSink<double>>();
  {
    io::DataOutputStream da{a->output()};
    io::DataOutputStream db{b->output()};
    for (int t = 0; t < 20; ++t) da.write_f64(t);        // x[t] = t
    for (int t = -3; t < 17; ++t) db.write_f64(t < 0 ? -1.0 : t);
    a->output()->close();
    b->output()->close();
  }
  network.add(std::make_shared<DelaySum>(
      std::vector{a->input(), b->input()}, out->output(),
      std::vector<std::uint32_t>{0, 3}));
  network.add(std::make_shared<CollectF64>(out->input(), sink));
  network.run();
  const auto values = sink->values();
  ASSERT_GE(values.size(), 17u);
  for (int t = 0; t < 17; ++t) {
    EXPECT_DOUBLE_EQ(values[static_cast<std::size_t>(t)], 2.0 * t);
  }
}

TEST(SpectralPower, ToneBeatsSilence) {
  Network network;
  auto in = network.make_channel({.capacity = 4096});
  auto out = network.make_channel({.capacity = 4096});
  auto sink = std::make_shared<CollectSink<double>>();
  {
    io::DataOutputStream d{in->output()};
    // Frame 1: a bin-4 tone over 64 samples; frame 2: silence.
    for (int t = 0; t < 64; ++t) {
      d.write_f64(std::sin(2.0 * std::numbers::pi * 4.0 * t / 64.0));
    }
    for (int t = 0; t < 64; ++t) d.write_f64(0.0);
    in->output()->close();
  }
  network.add(
      std::make_shared<SpectralPower>(in->input(), out->output(), 64, 4));
  network.add(std::make_shared<CollectF64>(out->input(), sink));
  network.run();
  ASSERT_EQ(sink->size(), 2u);
  EXPECT_GT(sink->values()[0], 100.0 * (sink->values()[1] + 1e-12));
}

TEST(PlaneWaveSource, NoiseReplaysExactlyAcrossMigration) {
  // A noisy source interrupted at an arbitrary step boundary and shipped
  // to another node must continue with *bit-identical* output: its RNG
  // state is rederived by replaying seed+count (determinate migration).
  constexpr long kSamples = 50;
  const auto make_source = [&](std::shared_ptr<core::ChannelOutputStream> out) {
    return std::make_shared<PlaneWaveSource>(std::move(out), 0.05, 1.5,
                                             /*noise=*/0.3, /*seed=*/99,
                                             kSamples);
  };

  // Reference: uninterrupted run.
  std::vector<double> reference;
  {
    auto ch = std::make_shared<core::Channel>(1 << 16);
    make_source(ch->output())->run();
    io::DataInputStream in{ch->input()};
    for (long i = 0; i < kSamples; ++i) reference.push_back(in.read_f64());
  }

  // Interrupted run: small channel so the source is backpressured.
  auto node_a = dist::NodeContext::create();
  auto node_b = dist::NodeContext::create();
  auto ch = std::make_shared<core::Channel>(256);
  auto source = make_source(ch->output());
  std::jthread runner{[&] { source->run(); }};

  io::DataInputStream in{ch->input()};
  std::vector<double> combined;
  for (int i = 0; i < 10; ++i) combined.push_back(in.read_f64());
  source->request_pause();
  // Draining unblocks the writer so it can reach its next step boundary.
  while (!source->paused()) combined.push_back(in.read_f64());

  const ByteVector shipment = dist::ship_process(node_a, source);
  source->abandon();
  runner.join();

  auto remote = dist::receive_process(node_b, {shipment.data(),
                                               shipment.size()});
  std::jthread remote_runner{[&] { remote->run(); }};
  while (combined.size() < static_cast<std::size_t>(kSamples)) {
    combined.push_back(in.read_f64());
  }
  ASSERT_EQ(combined.size(), reference.size());
  for (long i = 0; i < kSamples; ++i) {
    EXPECT_DOUBLE_EQ(combined[static_cast<std::size_t>(i)],
                     reference[static_cast<std::size_t>(i)])
        << "sample " << i;
  }
}

}  // namespace
}  // namespace dpn::dsp
