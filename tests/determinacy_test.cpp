#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <thread>

#include "core/network.hpp"
#include "dist/ship.hpp"
#include "net/transport.hpp"
#include "factor/factor.hpp"
#include "par/schema.hpp"
#include "processes/arith.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "processes/merge.hpp"
#include "processes/sieve.hpp"
#include "sched/scheduler.hpp"
#include "support/rng.hpp"

/// Kahn's determinacy theorem, attacked operationally: the same program
/// graph run under wildly different buffer sizes, scheduling pressure,
/// artificial jitter, and physical distribution must produce *identical*
/// channel histories.  Any divergence is a runtime bug, not noise.
namespace dpn {
namespace {

using core::Channel;
using core::MonitorOptions;
using core::Network;
using processes::Add;
using processes::Collect;
using processes::CollectSink;
using processes::Cons;
using processes::Constant;
using processes::Duplicate;
using processes::Identity;
using processes::OrderedMerge;
using processes::Scale;
using processes::Sequence;
using processes::Sift;

/// Identity with a pseudo-random per-chunk delay: injects scheduling
/// jitter without touching data.
class JitterIdentity final : public core::IterativeProcess {
 public:
  JitterIdentity(std::shared_ptr<core::ChannelInputStream> in,
                 std::shared_ptr<core::ChannelOutputStream> out,
                 std::uint64_t seed)
      : rng_(seed) {
    track_input(std::move(in));
    track_output(std::move(out));
  }
  std::string type_name() const override { return "test.JitterIdentity"; }
  void write_fields(serial::ObjectOutputStream&) const override {
    throw SerializationError{"local-only"};
  }

 protected:
  void step() override {
    std::uint8_t buffer[64];
    const std::size_t n = input(0)->read_some(buffer);
    if (n == 0) throw EndOfStream{};
    if (rng_.below(4) == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds{rng_.below(200)});
    }
    output(0)->write({buffer, n});
  }

 private:
  Xoshiro256 rng_;
};

/// A composite graph mixing a Fibonacci cycle, a sieve, and an ordered
/// merge of both streams, with jitter stages injected.  Returns the full
/// output history.
std::vector<std::int64_t> run_mixed_graph(std::size_t capacity,
                                          std::uint64_t jitter_seed) {
  Network network;
  const auto ch = [&](const char* label) {
    return network.make_channel({.capacity = capacity, .label = label});
  };

  // Fibonacci half (Figure 2).
  auto ab = ch("ab"), be = ch("be"), cd = ch("cd"), df = ch("df");
  auto ed = ch("ed"), eg = ch("eg"), fg = ch("fg"), fh = ch("fh");
  auto gb = ch("gb");
  network.add(std::make_shared<Constant>(1, ab->output(), 1));
  network.add(std::make_shared<Cons>(ab->input(), gb->input(), be->output()));
  network.add(
      std::make_shared<Duplicate>(be->input(), ed->output(), eg->output()));
  network.add(std::make_shared<Add>(eg->input(), fg->input(), gb->output()));
  network.add(std::make_shared<Constant>(1, cd->output(), 1));
  network.add(std::make_shared<Cons>(cd->input(), ed->input(), df->output()));
  network.add(
      std::make_shared<Duplicate>(df->input(), fh->output(), fg->output()));

  // Sieve half (Figure 7), scaled so its values interleave with the
  // Fibonacci numbers in the merge.
  auto numbers = ch("numbers"), primes = ch("primes"), scaled = ch("scaled");
  network.add(std::make_shared<Sequence>(2, numbers->output(), 80));
  network.add(std::make_shared<Sift>(numbers->input(), primes->output()));
  network.add(std::make_shared<Scale>(primes->input(), scaled->output(), 3));

  // Jitter both streams, then merge them deterministically.
  auto fib_jittered = ch("fibj"), sieve_jittered = ch("sievej");
  network.add(std::make_shared<JitterIdentity>(fh->input(),
                                               fib_jittered->output(),
                                               jitter_seed));
  network.add(std::make_shared<JitterIdentity>(scaled->input(),
                                               sieve_jittered->output(),
                                               jitter_seed * 31 + 7));

  auto merged = ch("merged");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.add(std::make_shared<OrderedMerge>(
      std::vector{fib_jittered->input(), sieve_jittered->input()},
      merged->output()));
  network.add(std::make_shared<Collect>(merged->input(), sink, 40));

  network.enable_monitor(MonitorOptions{});
  network.run();
  return sink->values();
}

/// Closed-form oracle for the mixed graph: the OrderedMerge semantics
/// applied to the Fibonacci history and the scaled prime stream.
std::vector<std::int64_t> mixed_graph_oracle(std::size_t count) {
  std::vector<std::int64_t> fib;
  for (std::int64_t a = 1, b = 1; fib.size() < 4 * count;) {
    fib.push_back(a);
    const std::int64_t next = a + b;
    a = b;
    b = next;
  }
  std::vector<std::int64_t> sieve;
  for (std::int64_t candidate = 2; candidate <= 81; ++candidate) {
    bool prime = true;
    for (std::int64_t d = 2; d * d <= candidate; ++d) {
      if (candidate % d == 0) {
        prime = false;
        break;
      }
    }
    if (prime) sieve.push_back(3 * candidate);
  }
  // Replay OrderedMerge: emit the least head, advance every input whose
  // head equals it (inputs past their end are exhausted).
  std::vector<std::int64_t> out;
  std::size_t i = 0, j = 0;
  while (out.size() < count) {
    std::optional<std::int64_t> least;
    if (i < fib.size() && (!least || fib[i] < *least)) least = fib[i];
    if (j < sieve.size() && (!least || sieve[j] < *least)) least = sieve[j];
    if (!least) break;
    out.push_back(*least);
    if (i < fib.size() && fib[i] == *least) ++i;
    if (j < sieve.size() && sieve[j] == *least) ++j;
  }
  return out;
}

class MixedGraphDeterminacy
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(MixedGraphDeterminacy, HistoryMatchesOracle) {
  const auto [capacity, seed] = GetParam();
  const auto values = run_mixed_graph(capacity, seed);
  ASSERT_EQ(values.size(), 40u);
  EXPECT_EQ(values, mixed_graph_oracle(40))
      << "capacity " << capacity << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    CapacitiesAndSeeds, MixedGraphDeterminacy,
    ::testing::Combine(::testing::Values(16, 64, 256, 4096),
                       ::testing::Values(1u, 2u, 3u)));

TEST(Determinacy, DistributedRunMatchesLocalRun) {
  // The same three-stage pipeline, run (a) in one address space and
  // (b) split across two nodes with a socket in the middle.  Histories
  // must match element-for-element.
  const auto run_once = [](bool distributed) {
    auto node_a = dist::NodeContext::create();
    auto node_b = dist::NodeContext::create();
    auto ch1 = std::make_shared<Channel>(128);
    auto ch2 = std::make_shared<Channel>(128);
    auto ch3 = std::make_shared<Channel>(128);
    auto sink = std::make_shared<CollectSink<std::int64_t>>();

    auto source = std::make_shared<Sequence>(-50, ch1->output(), 300);
    auto stage1 = std::make_shared<Scale>(ch1->input(), ch2->output(), -7);
    std::shared_ptr<core::Process> stage2 =
        std::make_shared<Identity>(ch2->input(), ch3->output());
    auto drain = std::make_shared<Collect>(ch3->input(), sink);

    if (distributed) {
      const ByteVector shipment = dist::ship_process(node_a, stage2);
      stage2 = dist::receive_process(node_b, {shipment.data(),
                                              shipment.size()});
    }
    std::jthread t1{[&] { source->run(); }};
    std::jthread t2{[&] { stage1->run(); }};
    std::jthread t3{[&] { stage2->run(); }};
    drain->run();
    return sink->values();
  };
  const auto local = run_once(false);
  const auto remote = run_once(true);
  ASSERT_EQ(local.size(), 300u);
  EXPECT_EQ(local, remote);
}

// --- Transport x scheduler matrix -------------------------------------------
//
// Determinacy must also survive the transport substrate: the same
// distributed pipeline run over the blocking transport (one TCP
// connection per channel) and the mux transport (stream-id-tagged frames
// over one connection per host pair), under both thread-per-process and
// M:N work-stealing execution, must produce byte-identical histories.

struct TransportSchedConfig {
  std::string label;
  net::TransportKind transport;
  sched::SchedulerOptions sched;
};

std::vector<TransportSchedConfig> transport_matrix() {
  std::vector<TransportSchedConfig> matrix;
  for (const net::TransportKind kind :
       {net::TransportKind::kBlocking, net::TransportKind::kMux}) {
    const std::string name =
        kind == net::TransportKind::kMux ? "mux" : "blocking";
    matrix.push_back({name + " / threads", kind, {}});
    sched::SchedulerOptions mn;
    mn.mode = sched::SchedMode::kWorkSteal;
    mn.workers = 2;
    matrix.push_back({name + " / work-steal x2", kind, mn});
  }
  return matrix;
}

TEST(TransportMatrix, DistributedHistoryByteIdentical) {
  const net::TransportKind saved = net::network_options().transport;
  std::vector<std::int64_t> reference;
  for (const auto& config : transport_matrix()) {
    net::network_options().transport = config.transport;
    // Nodes are created after the transport switch so their rendezvous
    // listeners (and every dial-back) use the row's backend.
    auto node_a = dist::NodeContext::create();
    auto node_b = dist::NodeContext::create();

    auto ch1 = std::make_shared<Channel>(128, "tm-ch1");
    auto ch2 = std::make_shared<Channel>(128, "tm-ch2");
    auto ch3 = std::make_shared<Channel>(128, "tm-ch3");
    auto sink = std::make_shared<CollectSink<std::int64_t>>();

    auto source = std::make_shared<Sequence>(-50, ch1->output(), 300);
    auto stage1 = std::make_shared<Scale>(ch1->input(), ch2->output(), -7);
    std::shared_ptr<core::Process> stage2 =
        std::make_shared<Identity>(ch2->input(), ch3->output());
    auto drain = std::make_shared<Collect>(ch3->input(), sink);

    const ByteVector shipment = dist::ship_process(node_a, stage2);
    stage2 =
        dist::receive_process(node_b, {shipment.data(), shipment.size()});

    Network host_a;
    host_a.set_scheduler(config.sched);
    host_a.add(source);
    host_a.add(stage1);
    host_a.add(drain);
    Network host_b;
    host_b.set_scheduler(config.sched);
    host_b.add(stage2);

    std::jthread remote{[&] { host_b.run(); }};
    host_a.run();
    remote.join();

    const auto values = sink->values();
    ASSERT_EQ(values.size(), 300u) << config.label;
    if (reference.empty()) {
      reference = values;
    } else {
      EXPECT_EQ(values, reference) << config.label;
    }
  }
  net::network_options().transport = saved;
}

// --- Scheduler matrix -------------------------------------------------------
//
// Kahn determinacy must survive the execution substrate: the same graph
// run thread-per-process and under the M:N work-stealing scheduler (at
// several worker counts) must produce byte-identical output histories.
// Steals migrate fibers between workers mid-stream, so any missing
// publication in the fiber handoff shows up here as a corrupted history.

/// One row of the scheduler matrix: a label for failure messages plus the
/// options handed to Network::set_scheduler.
struct SchedConfig {
  std::string label;
  sched::SchedulerOptions options;
};

std::vector<SchedConfig> scheduler_matrix() {
  std::vector<SchedConfig> matrix;
  matrix.push_back({"thread-per-process", {}});
  const unsigned nproc = std::max(1u, std::thread::hardware_concurrency());
  for (const unsigned workers : {1u, 2u, nproc}) {
    sched::SchedulerOptions options;
    options.mode = sched::SchedMode::kWorkSteal;
    options.workers = workers;
    matrix.push_back(
        {"work-steal x" + std::to_string(workers), std::move(options)});
  }
  return matrix;
}

TEST(SchedulerMatrix, SieveHistoryByteIdentical) {
  // Figure 7/8 sieve: Sift inserts a Modulo filter per prime at runtime,
  // so under M:N the graph also exercises detached fiber spawns from a
  // running fiber.
  std::vector<std::int64_t> reference;
  for (const auto& config : scheduler_matrix()) {
    Network network;
    network.set_scheduler(config.options);
    auto numbers = network.make_channel({.capacity = 64, .label = "numbers"});
    auto primes = network.make_channel({.capacity = 64, .label = "primes"});
    auto sink = std::make_shared<CollectSink<std::int64_t>>();
    network.add(std::make_shared<Sequence>(2, numbers->output(), 299));
    network.add(std::make_shared<Sift>(numbers->input(), primes->output()));
    network.add(std::make_shared<Collect>(primes->input(), sink));
    network.run();
    const auto values = sink->values();
    ASSERT_FALSE(values.empty()) << config.label;
    EXPECT_EQ(values.front(), 2) << config.label;
    if (reference.empty()) {
      reference = values;
    } else {
      EXPECT_EQ(values, reference) << config.label;
    }
  }
}

TEST(SchedulerMatrix, ParallelFactorHistoryByteIdentical) {
  // Section 5.2 weak-RSA search through the meta_dynamic schema.  The
  // Turnstile arrival order varies with scheduling, but the indexed merge
  // must present results to the consumer in pipeline order regardless of
  // which substrate runs the workers.
  const auto problem = factor::FactorProblem::generate(/*seed=*/11,
                                                       /*prime_bits=*/64,
                                                       /*total_tasks=*/12);
  std::vector<std::pair<bool, std::uint64_t>> reference;
  for (const auto& config : scheduler_matrix()) {
    std::mutex mutex;
    std::vector<std::pair<bool, std::uint64_t>> seen;
    auto observer = [&](const std::shared_ptr<core::Task>& task) {
      auto result = std::dynamic_pointer_cast<factor::FactorResultTask>(task);
      ASSERT_TRUE(result);
      std::scoped_lock lock{mutex};
      seen.emplace_back(result->found, result->d_start);
    };
    auto graph = par::pipeline(
        std::make_shared<factor::FactorProducerTask>(problem.n, 12, 32,
                                                     /*announce=*/false),
        observer, [&](auto in, auto out) {
          return par::meta_dynamic(std::move(in), std::move(out), 3);
        });
    Network network;
    network.set_scheduler(config.options);
    network.add(graph);
    network.run();
    ASSERT_FALSE(seen.empty()) << config.label;
    // The winning batch reports the true difference's batch start.
    const auto hit = std::find_if(seen.begin(), seen.end(),
                                  [](const auto& r) { return r.first; });
    ASSERT_NE(hit, seen.end()) << config.label;
    EXPECT_EQ(hit->second, (problem.d_true / 64) * 64) << config.label;
    if (reference.empty()) {
      reference = seen;
    } else {
      EXPECT_EQ(seen, reference) << config.label;
    }
  }
}

TEST(SchedulerMatrix, ParCompositesHistoryByteIdentical) {
  // The static and dynamic parallel-worker schemas as nested composites
  // inside a Network: under M:N every component (Scatter, workers,
  // Gather / Direct, Turnstile, Select) becomes a sibling fiber of the
  // composite's fiber.  Output must match the plain pipeline order.
  for (const bool dynamic : {false, true}) {
    std::vector<std::pair<bool, std::uint64_t>> reference;
    const auto problem = factor::FactorProblem::generate(/*seed=*/13,
                                                         /*prime_bits=*/64,
                                                         /*total_tasks=*/8);
    for (const auto& config : scheduler_matrix()) {
      std::mutex mutex;
      std::vector<std::pair<bool, std::uint64_t>> seen;
      auto observer = [&](const std::shared_ptr<core::Task>& task) {
        auto result =
            std::dynamic_pointer_cast<factor::FactorResultTask>(task);
        ASSERT_TRUE(result);
        std::scoped_lock lock{mutex};
        seen.emplace_back(result->found, result->d_start);
      };
      auto graph = par::pipeline(
          std::make_shared<factor::FactorProducerTask>(problem.n, 8, 32,
                                                       /*announce=*/false),
          observer, [&](auto in, auto out) {
            return dynamic
                       ? par::meta_dynamic(std::move(in), std::move(out), 2)
                       : par::meta_static(std::move(in), std::move(out), 2);
          });
      Network network;
      network.set_scheduler(config.options);
      network.add(graph);
      network.run();
      const char* schema = dynamic ? "dynamic" : "static";
      ASSERT_FALSE(seen.empty()) << schema << " " << config.label;
      if (reference.empty()) {
        reference = seen;
      } else {
        EXPECT_EQ(seen, reference) << schema << " " << config.label;
      }
    }
  }
}

TEST(Determinacy, ChannelReportReflectsState) {
  Network network;
  auto ch = network.make_channel({.capacity = 64, .label = "probe"});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.add(std::make_shared<Sequence>(0, ch->output(), 4));
  network.add(std::make_shared<Collect>(ch->input(), sink));
  network.run();
  const std::string report = network.channel_report();
  EXPECT_NE(report.find("probe"), std::string::npos);
  EXPECT_NE(report.find("writer closed"), std::string::npos);
}

}  // namespace
}  // namespace dpn
