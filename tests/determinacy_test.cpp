#include <gtest/gtest.h>

#include <thread>

#include "core/network.hpp"
#include "dist/ship.hpp"
#include "processes/arith.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "processes/merge.hpp"
#include "processes/sieve.hpp"
#include "support/rng.hpp"

/// Kahn's determinacy theorem, attacked operationally: the same program
/// graph run under wildly different buffer sizes, scheduling pressure,
/// artificial jitter, and physical distribution must produce *identical*
/// channel histories.  Any divergence is a runtime bug, not noise.
namespace dpn {
namespace {

using core::Channel;
using core::MonitorOptions;
using core::Network;
using processes::Add;
using processes::Collect;
using processes::CollectSink;
using processes::Cons;
using processes::Constant;
using processes::Duplicate;
using processes::Identity;
using processes::OrderedMerge;
using processes::Scale;
using processes::Sequence;
using processes::Sift;

/// Identity with a pseudo-random per-chunk delay: injects scheduling
/// jitter without touching data.
class JitterIdentity final : public core::IterativeProcess {
 public:
  JitterIdentity(std::shared_ptr<core::ChannelInputStream> in,
                 std::shared_ptr<core::ChannelOutputStream> out,
                 std::uint64_t seed)
      : rng_(seed) {
    track_input(std::move(in));
    track_output(std::move(out));
  }
  std::string type_name() const override { return "test.JitterIdentity"; }
  void write_fields(serial::ObjectOutputStream&) const override {
    throw SerializationError{"local-only"};
  }

 protected:
  void step() override {
    std::uint8_t buffer[64];
    const std::size_t n = input(0)->read_some(buffer);
    if (n == 0) throw EndOfStream{};
    if (rng_.below(4) == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds{rng_.below(200)});
    }
    output(0)->write({buffer, n});
  }

 private:
  Xoshiro256 rng_;
};

/// A composite graph mixing a Fibonacci cycle, a sieve, and an ordered
/// merge of both streams, with jitter stages injected.  Returns the full
/// output history.
std::vector<std::int64_t> run_mixed_graph(std::size_t capacity,
                                          std::uint64_t jitter_seed) {
  Network network;
  const auto ch = [&](const char* label) {
    return network.make_channel({.capacity = capacity, .label = label});
  };

  // Fibonacci half (Figure 2).
  auto ab = ch("ab"), be = ch("be"), cd = ch("cd"), df = ch("df");
  auto ed = ch("ed"), eg = ch("eg"), fg = ch("fg"), fh = ch("fh");
  auto gb = ch("gb");
  network.add(std::make_shared<Constant>(1, ab->output(), 1));
  network.add(std::make_shared<Cons>(ab->input(), gb->input(), be->output()));
  network.add(
      std::make_shared<Duplicate>(be->input(), ed->output(), eg->output()));
  network.add(std::make_shared<Add>(eg->input(), fg->input(), gb->output()));
  network.add(std::make_shared<Constant>(1, cd->output(), 1));
  network.add(std::make_shared<Cons>(cd->input(), ed->input(), df->output()));
  network.add(
      std::make_shared<Duplicate>(df->input(), fh->output(), fg->output()));

  // Sieve half (Figure 7), scaled so its values interleave with the
  // Fibonacci numbers in the merge.
  auto numbers = ch("numbers"), primes = ch("primes"), scaled = ch("scaled");
  network.add(std::make_shared<Sequence>(2, numbers->output(), 80));
  network.add(std::make_shared<Sift>(numbers->input(), primes->output()));
  network.add(std::make_shared<Scale>(primes->input(), scaled->output(), 3));

  // Jitter both streams, then merge them deterministically.
  auto fib_jittered = ch("fibj"), sieve_jittered = ch("sievej");
  network.add(std::make_shared<JitterIdentity>(fh->input(),
                                               fib_jittered->output(),
                                               jitter_seed));
  network.add(std::make_shared<JitterIdentity>(scaled->input(),
                                               sieve_jittered->output(),
                                               jitter_seed * 31 + 7));

  auto merged = ch("merged");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.add(std::make_shared<OrderedMerge>(
      std::vector{fib_jittered->input(), sieve_jittered->input()},
      merged->output()));
  network.add(std::make_shared<Collect>(merged->input(), sink, 40));

  network.enable_monitor(MonitorOptions{});
  network.run();
  return sink->values();
}

/// Closed-form oracle for the mixed graph: the OrderedMerge semantics
/// applied to the Fibonacci history and the scaled prime stream.
std::vector<std::int64_t> mixed_graph_oracle(std::size_t count) {
  std::vector<std::int64_t> fib;
  for (std::int64_t a = 1, b = 1; fib.size() < 4 * count;) {
    fib.push_back(a);
    const std::int64_t next = a + b;
    a = b;
    b = next;
  }
  std::vector<std::int64_t> sieve;
  for (std::int64_t candidate = 2; candidate <= 81; ++candidate) {
    bool prime = true;
    for (std::int64_t d = 2; d * d <= candidate; ++d) {
      if (candidate % d == 0) {
        prime = false;
        break;
      }
    }
    if (prime) sieve.push_back(3 * candidate);
  }
  // Replay OrderedMerge: emit the least head, advance every input whose
  // head equals it (inputs past their end are exhausted).
  std::vector<std::int64_t> out;
  std::size_t i = 0, j = 0;
  while (out.size() < count) {
    std::optional<std::int64_t> least;
    if (i < fib.size() && (!least || fib[i] < *least)) least = fib[i];
    if (j < sieve.size() && (!least || sieve[j] < *least)) least = sieve[j];
    if (!least) break;
    out.push_back(*least);
    if (i < fib.size() && fib[i] == *least) ++i;
    if (j < sieve.size() && sieve[j] == *least) ++j;
  }
  return out;
}

class MixedGraphDeterminacy
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(MixedGraphDeterminacy, HistoryMatchesOracle) {
  const auto [capacity, seed] = GetParam();
  const auto values = run_mixed_graph(capacity, seed);
  ASSERT_EQ(values.size(), 40u);
  EXPECT_EQ(values, mixed_graph_oracle(40))
      << "capacity " << capacity << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    CapacitiesAndSeeds, MixedGraphDeterminacy,
    ::testing::Combine(::testing::Values(16, 64, 256, 4096),
                       ::testing::Values(1u, 2u, 3u)));

TEST(Determinacy, DistributedRunMatchesLocalRun) {
  // The same three-stage pipeline, run (a) in one address space and
  // (b) split across two nodes with a socket in the middle.  Histories
  // must match element-for-element.
  const auto run_once = [](bool distributed) {
    auto node_a = dist::NodeContext::create();
    auto node_b = dist::NodeContext::create();
    auto ch1 = std::make_shared<Channel>(128);
    auto ch2 = std::make_shared<Channel>(128);
    auto ch3 = std::make_shared<Channel>(128);
    auto sink = std::make_shared<CollectSink<std::int64_t>>();

    auto source = std::make_shared<Sequence>(-50, ch1->output(), 300);
    auto stage1 = std::make_shared<Scale>(ch1->input(), ch2->output(), -7);
    std::shared_ptr<core::Process> stage2 =
        std::make_shared<Identity>(ch2->input(), ch3->output());
    auto drain = std::make_shared<Collect>(ch3->input(), sink);

    if (distributed) {
      const ByteVector shipment = dist::ship_process(node_a, stage2);
      stage2 = dist::receive_process(node_b, {shipment.data(),
                                              shipment.size()});
    }
    std::jthread t1{[&] { source->run(); }};
    std::jthread t2{[&] { stage1->run(); }};
    std::jthread t3{[&] { stage2->run(); }};
    drain->run();
    return sink->values();
  };
  const auto local = run_once(false);
  const auto remote = run_once(true);
  ASSERT_EQ(local.size(), 300u);
  EXPECT_EQ(local, remote);
}

TEST(Determinacy, ChannelReportReflectsState) {
  Network network;
  auto ch = network.make_channel({.capacity = 64, .label = "probe"});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.add(std::make_shared<Sequence>(0, ch->output(), 4));
  network.add(std::make_shared<Collect>(ch->input(), sink));
  network.run();
  const std::string report = network.channel_report();
  EXPECT_NE(report.find("probe"), std::string::npos);
  EXPECT_NE(report.find("writer closed"), std::string::npos);
}

}  // namespace
}  // namespace dpn
