#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>

#include "core/network.hpp"
#include "par/generic.hpp"
#include "par/schema.hpp"
#include "processes/basic.hpp"

namespace dpn::par {
namespace {

using processes::CollectSink;

/// Yields WorkItem tasks 0..count-1, then null.
class CountingProducerTask final : public Task {
 public:
  CountingProducerTask() = default;
  explicit CountingProducerTask(std::int64_t count) : remaining_(count) {}

  std::shared_ptr<Task> run() override;

  std::string type_name() const override { return "test.par.Producer"; }
  void write_fields(serial::ObjectOutputStream& out) const override {
    out.write_i64(next_);
    out.write_i64(remaining_);
  }
  static std::shared_ptr<CountingProducerTask> read_object(
      serial::ObjectInputStream& in) {
    auto task = std::make_shared<CountingProducerTask>();
    task->next_ = in.read_i64();
    task->remaining_ = in.read_i64();
    return task;
  }

 private:
  std::int64_t next_ = 0;
  std::int64_t remaining_ = 0;
};

/// Worker task: squares its id (with an optional artificial delay skew to
/// force out-of-order completion under dynamic balancing).
class WorkItem final : public Task {
 public:
  WorkItem() = default;
  explicit WorkItem(std::int64_t id) : id_(id) {}
  std::int64_t id() const { return id_; }

  std::shared_ptr<Task> run() override;

  std::string type_name() const override { return "test.par.WorkItem"; }
  void write_fields(serial::ObjectOutputStream& out) const override {
    out.write_i64(id_);
  }
  static std::shared_ptr<WorkItem> read_object(serial::ObjectInputStream& in) {
    auto task = std::make_shared<WorkItem>();
    task->id_ = in.read_i64();
    return task;
  }

 private:
  std::int64_t id_ = 0;
};

/// Result task: carries id and square; consumer-side run() is a no-op
/// (collection happens through the Consumer observer).
class WorkResult final : public Task {
 public:
  WorkResult() = default;
  WorkResult(std::int64_t id, std::int64_t square) : id_(id), square_(square) {}
  std::int64_t id() const { return id_; }
  std::int64_t square() const { return square_; }

  std::shared_ptr<Task> run() override { return nullptr; }
  std::string type_name() const override { return "test.par.WorkResult"; }
  void write_fields(serial::ObjectOutputStream& out) const override {
    out.write_i64(id_);
    out.write_i64(square_);
  }
  static std::shared_ptr<WorkResult> read_object(
      serial::ObjectInputStream& in) {
    auto task = std::make_shared<WorkResult>();
    task->id_ = in.read_i64();
    task->square_ = in.read_i64();
    return task;
  }

 private:
  std::int64_t id_ = 0;
  std::int64_t square_ = 0;
};

std::shared_ptr<Task> CountingProducerTask::run() {
  if (remaining_ == 0) return nullptr;
  --remaining_;
  return std::make_shared<WorkItem>(next_++);
}

std::shared_ptr<Task> WorkItem::run() {
  // Odd-numbered tasks are slow: under dynamic balancing results complete
  // out of order, exercising the reordering machinery.
  if (id_ % 2 == 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds{2});
  }
  return std::make_shared<WorkResult>(id_, id_ * id_);
}

[[maybe_unused]] const bool kRegistered =
    serial::register_type<CountingProducerTask>("test.par.Producer") &&
    serial::register_type<WorkItem>("test.par.WorkItem") &&
    serial::register_type<WorkResult>("test.par.WorkResult");

/// Runs producer -> stage -> consumer and returns observed result ids (in
/// consumer order) and squares.
std::vector<std::pair<std::int64_t, std::int64_t>> run_schema(
    std::int64_t tasks,
    const std::function<std::shared_ptr<core::Process>(
        std::shared_ptr<core::ChannelInputStream>,
        std::shared_ptr<core::ChannelOutputStream>)>& make_stage) {
  std::mutex mutex;
  std::vector<std::pair<std::int64_t, std::int64_t>> seen;
  auto observer = [&](const std::shared_ptr<Task>& task) {
    auto result = std::dynamic_pointer_cast<WorkResult>(task);
    ASSERT_TRUE(result);
    std::scoped_lock lock{mutex};
    seen.emplace_back(result->id(), result->square());
  };
  auto graph = pipeline(std::make_shared<CountingProducerTask>(tasks),
                        observer, make_stage);
  graph->run();
  return seen;
}

TEST(Pipeline, SingleWorker) {
  const auto seen = run_schema(32, [](auto in, auto out) {
    return std::make_shared<Worker>(std::move(in), std::move(out));
  });
  ASSERT_EQ(seen.size(), 32u);
  for (std::int64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].first, i);
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].second, i * i);
  }
}

class SchemaEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SchemaEquivalence, StaticMatchesPipelineOrder) {
  const std::size_t workers = GetParam();
  const auto seen = run_schema(40, [&](auto in, auto out) {
    return meta_static(std::move(in), std::move(out), workers);
  });
  ASSERT_EQ(seen.size(), 40u);
  for (std::int64_t i = 0; i < 40; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].first, i);
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].second, i * i);
  }
}

TEST_P(SchemaEquivalence, DynamicMatchesPipelineOrder) {
  // The paper's key claim for MetaDynamic (Section 5): despite the
  // non-determinate Turnstile, results reach the consumer in exactly the
  // pipeline order.
  const std::size_t workers = GetParam();
  const auto seen = run_schema(40, [&](auto in, auto out) {
    return meta_dynamic(std::move(in), std::move(out), workers);
  });
  ASSERT_EQ(seen.size(), 40u);
  for (std::int64_t i = 0; i < 40; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].first, i);
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].second, i * i);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, SchemaEquivalence,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Schema, DynamicRepeatedRunsIdentical) {
  // Determinacy stress: arrival order varies run to run; output must not.
  std::vector<std::pair<std::int64_t, std::int64_t>> reference;
  for (int round = 0; round < 5; ++round) {
    const auto seen = run_schema(30, [&](auto in, auto out) {
      return meta_dynamic(std::move(in), std::move(out), 4);
    });
    if (round == 0) {
      reference = seen;
    } else {
      EXPECT_EQ(seen, reference);
    }
  }
}

TEST(Schema, ZeroWorkersRejected) {
  auto ch1 = std::make_shared<core::Channel>(64);
  auto ch2 = std::make_shared<core::Channel>(64);
  EXPECT_THROW(meta_static(ch1->input(), ch2->output(), 0), UsageError);
  EXPECT_THROW(meta_dynamic(ch1->input(), ch2->output(), 0), UsageError);
}

// --- Data-dependent termination (StopSignal) ------------------------------------

/// Consumer task that stops the network once it sees id == threshold.
class StopAtTask final : public Task {
 public:
  StopAtTask() = default;
  StopAtTask(std::int64_t id, std::int64_t threshold)
      : id_(id), threshold_(threshold) {}

  std::shared_ptr<Task> run() override {
    if (id_ >= threshold_) return std::make_shared<StopSignal>();
    return nullptr;
  }
  std::string type_name() const override { return "test.par.StopAt"; }
  void write_fields(serial::ObjectOutputStream& out) const override {
    out.write_i64(id_);
    out.write_i64(threshold_);
  }
  static std::shared_ptr<StopAtTask> read_object(
      serial::ObjectInputStream& in) {
    auto task = std::make_shared<StopAtTask>();
    task->id_ = in.read_i64();
    task->threshold_ = in.read_i64();
    return task;
  }

 private:
  std::int64_t id_ = 0;
  std::int64_t threshold_ = 0;
};

/// Worker item that yields StopAtTask results.
class StopItem final : public Task {
 public:
  StopItem() = default;
  explicit StopItem(std::int64_t id) : id_(id) {}
  std::shared_ptr<Task> run() override {
    return std::make_shared<StopAtTask>(id_, 10);
  }
  std::string type_name() const override { return "test.par.StopItem"; }
  void write_fields(serial::ObjectOutputStream& out) const override {
    out.write_i64(id_);
  }
  static std::shared_ptr<StopItem> read_object(serial::ObjectInputStream& in) {
    auto task = std::make_shared<StopItem>();
    task->id_ = in.read_i64();
    return task;
  }

 private:
  std::int64_t id_ = 0;
};

/// Producer yielding an endless stream of StopItems.
class EndlessProducer final : public Task {
 public:
  std::shared_ptr<Task> run() override {
    return std::make_shared<StopItem>(next_++);
  }
  std::string type_name() const override { return "test.par.Endless"; }
  void write_fields(serial::ObjectOutputStream& out) const override {
    out.write_i64(next_);
  }
  static std::shared_ptr<EndlessProducer> read_object(
      serial::ObjectInputStream& in) {
    auto task = std::make_shared<EndlessProducer>();
    task->next_ = in.read_i64();
    return task;
  }

 private:
  std::int64_t next_ = 0;
};

[[maybe_unused]] const bool kStopRegistered =
    serial::register_type<StopAtTask>("test.par.StopAt") &&
    serial::register_type<StopItem>("test.par.StopItem") &&
    serial::register_type<EndlessProducer>("test.par.Endless");

TEST(Consumer, StopSignalTerminatesEndlessNetwork) {
  // The factor-search pattern: an unbounded producer, terminated by the
  // consumer the moment a result asks to stop (Section 5.2).
  int results_seen = 0;
  auto graph = pipeline(
      std::make_shared<EndlessProducer>(),
      [&](const std::shared_ptr<Task>&) { ++results_seen; },
      [](auto in, auto out) {
        return meta_dynamic(std::move(in), std::move(out), 3);
      });
  graph->run();  // must terminate
  EXPECT_GE(results_seen, 11);  // ids 0..10 at least reached the consumer
}

TEST(Tasks, BlobCodecRoundTrip) {
  auto channel = std::make_shared<core::Channel>(4096);
  io::DataOutputStream out{channel->output()};
  io::DataInputStream in{channel->input()};
  write_task(out, std::make_shared<WorkItem>(17));
  write_task(out, nullptr);
  auto restored = std::dynamic_pointer_cast<WorkItem>(read_task(in));
  ASSERT_TRUE(restored);
  EXPECT_EQ(restored->id(), 17);
  EXPECT_EQ(read_task(in), nullptr);
}

}  // namespace
}  // namespace dpn::par
