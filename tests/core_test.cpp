#include <gtest/gtest.h>

#include <thread>

#include "core/channel.hpp"
#include "core/network.hpp"
#include "core/process.hpp"
#include "io/data.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "processes/merge.hpp"

namespace dpn::core {
namespace {

using processes::Collect;
using processes::CollectSink;
using processes::Constant;
using processes::Identity;
using processes::OrderedMerge;
using processes::RouteByDivisibility;
using processes::Sequence;

// --- Channel ----------------------------------------------------------------

TEST(Channel, WriteReadThroughEndpoints) {
  Channel channel{16};
  io::DataOutputStream out{channel.output()};
  io::DataInputStream in{channel.input()};
  out.write_i64(12345);
  EXPECT_EQ(in.read_i64(), 12345);
}

TEST(Channel, ReaderBlocksOnEmpty) {
  Channel channel{16};
  std::jthread writer{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    io::DataOutputStream out{channel.output()};
    out.write_i64(7);
  }};
  io::DataInputStream in{channel.input()};
  EXPECT_EQ(in.read_i64(), 7);
}

TEST(Channel, CloseOutputDeliversEof) {
  Channel channel{16};
  channel.output()->close();
  EXPECT_EQ(channel.input()->read(), -1);
}

TEST(Channel, CloseInputMakesWritesThrow) {
  Channel channel{16};
  channel.input()->close();
  io::DataOutputStream out{channel.output()};
  EXPECT_THROW(out.write_i64(1), ChannelClosed);
}

TEST(Channel, ReadFullyBlocksForCompleteElement) {
  Channel channel{16};
  std::jthread writer{[&] {
    // Dribble one byte at a time; the reader's read_fully must wait for
    // all 8 (the blocking-read discipline).
    std::uint8_t bytes[8] = {0, 0, 0, 0, 0, 0, 0, 42};
    for (const std::uint8_t b : bytes) {
      channel.output()->write_byte(b);
      std::this_thread::sleep_for(std::chrono::milliseconds{1});
    }
  }};
  io::DataInputStream in{channel.input()};
  EXPECT_EQ(in.read_i64(), 42);
}

TEST(Channel, SerializationWithoutDistThrows) {
  // Core refuses to serialize endpoints unless dpn_dist installed hooks.
  // (dist_test links the hooks; here they may already be installed by
  // another test binary -- so only assert the no-context error path.)
  Channel channel{16};
  EXPECT_THROW(serial::to_bytes(channel.input()), std::exception);
}

// --- IterativeProcess lifecycle ----------------------------------------------

class Recorder final : public IterativeProcess {
 public:
  explicit Recorder(long iterations) : IterativeProcess(iterations) {}

  int starts = 0;
  int steps = 0;
  int stops = 0;

  std::string type_name() const override { return "test.Recorder"; }
  void write_fields(serial::ObjectOutputStream&) const override {}

 protected:
  void on_start() override { ++starts; }
  void step() override { ++steps; }
  void on_stop() override { ++stops; }
};

TEST(IterativeProcess, RunsExactlyIterationLimit) {
  Recorder recorder{5};
  recorder.run();
  EXPECT_EQ(recorder.starts, 1);
  EXPECT_EQ(recorder.steps, 5);
  EXPECT_EQ(recorder.stops, 1);
}

class ThrowingProcess final : public IterativeProcess {
 public:
  bool stopped = false;
  std::string type_name() const override { return "test.Throwing"; }
  void write_fields(serial::ObjectOutputStream&) const override {}

 protected:
  void step() override { throw EndOfStream{}; }
  void on_stop() override { stopped = true; }
};

TEST(IterativeProcess, IoErrorStopsGracefullyAndRunsOnStop) {
  ThrowingProcess process;
  EXPECT_NO_THROW(process.run());
  EXPECT_TRUE(process.stopped);
}

class FailingProcess final : public IterativeProcess {
 public:
  bool stopped = false;
  std::string type_name() const override { return "test.Failing"; }
  void write_fields(serial::ObjectOutputStream&) const override {}

 protected:
  void step() override { throw std::runtime_error{"bug"}; }
  void on_stop() override { stopped = true; }
};

TEST(IterativeProcess, NonIoErrorPropagatesButCleansUp) {
  FailingProcess process;
  EXPECT_THROW(process.run(), std::runtime_error);
  EXPECT_TRUE(process.stopped);  // the `finally` still ran
}

TEST(IterativeProcess, StoppingClosesTrackedEndpoints) {
  auto channel = std::make_shared<Channel>(64);
  auto source = std::make_shared<Constant>(1, channel->output(), 3);
  source->run();
  // After the producer stopped, the consumer can drain 3 elements and
  // then sees end-of-stream (Section 3.4).
  io::DataInputStream in{channel->input()};
  for (int i = 0; i < 3; ++i) EXPECT_EQ(in.read_i64(), 1);
  EXPECT_THROW(in.read_i64(), EndOfStream);
}

// --- CompositeProcess ---------------------------------------------------------

TEST(Composite, RunsMembersConcurrently) {
  // A pipeline where each member blocks on the other: only concurrent
  // execution can finish.
  auto a = std::make_shared<Channel>(4);
  auto b = std::make_shared<Channel>(4);
  auto sink = std::make_shared<CollectSink<std::int64_t>>();

  auto composite = std::make_shared<CompositeProcess>();
  composite->add(std::make_shared<Sequence>(0, a->output(), 100));
  composite->add(std::make_shared<Identity>(a->input(), b->output()));
  composite->add(std::make_shared<Collect>(b->input(), sink));
  composite->run();

  const auto values = sink->values();
  ASSERT_EQ(values.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(values[i], i);
}

TEST(Composite, FailurePropagatesAfterJoin) {
  auto composite = std::make_shared<CompositeProcess>();
  composite->add(std::make_shared<FailingProcess>());
  EXPECT_THROW(composite->run(), std::runtime_error);
}

TEST(Composite, AggregatesEndpoints) {
  auto a = std::make_shared<Channel>(4);
  auto b = std::make_shared<Channel>(4);
  auto composite = std::make_shared<CompositeProcess>();
  composite->add(std::make_shared<Identity>(a->input(), b->output()));
  EXPECT_EQ(composite->channel_inputs().size(), 1u);
  EXPECT_EQ(composite->channel_outputs().size(), 1u);
  EXPECT_THROW(composite->add(nullptr), UsageError);
}

// --- Network & termination -----------------------------------------------------

TEST(Network, PipelineTerminationByProducerLimit) {
  // Section 3.4 mode 2: the source stops; downstream drains everything.
  Network network;
  auto a = network.make_channel({.capacity = 8, .label = "a"});
  auto b = network.make_channel({.capacity = 8, .label = "b"});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.add(std::make_shared<Sequence>(1, a->output(), 50));
  network.add(std::make_shared<Identity>(a->input(), b->output()));
  network.add(std::make_shared<Collect>(b->input(), sink));
  network.run();
  EXPECT_EQ(sink->size(), 50u);
  EXPECT_EQ(sink->values().back(), 50);
}

TEST(Network, PipelineTerminationByConsumerLimit) {
  // Section 3.4 mode 1: the sink stops first; upstream is killed by
  // ChannelClosed on its next write.
  Network network;
  auto a = network.make_channel({.capacity = 8, .label = "a"});
  auto b = network.make_channel({.capacity = 8, .label = "b"});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.add(std::make_shared<Sequence>(1, a->output()));  // unbounded!
  network.add(std::make_shared<Identity>(a->input(), b->output()));
  network.add(std::make_shared<Collect>(b->input(), sink, 25));
  network.run();  // must terminate despite the unbounded source
  EXPECT_EQ(sink->size(), 25u);
  for (int i = 0; i < 25; ++i) EXPECT_EQ(sink->values()[i], i + 1);
}

TEST(Network, StartTwiceThrows) {
  Network network;
  network.add(std::make_shared<Recorder>(1));
  network.start();
  EXPECT_THROW(network.start(), UsageError);
  network.join();
}

TEST(Network, AddAfterStartThrows) {
  Network network;
  network.add(std::make_shared<Recorder>(1));
  network.start();
  EXPECT_THROW(network.add(std::make_shared<Recorder>(1)), UsageError);
  network.join();
}

TEST(Network, FigureThirteenDeadlocksWithoutMonitor) {
  // Figure 13: route 1 of every N to one input of a merge, N-1 to the
  // other; with a small channel the graph wedges.  Without the monitor we
  // only *detect* (via the monitor in detection-only mode) -- run with
  // abort to unwedge and confirm it was a write-blocked (artificial)
  // deadlock that growth can fix... here: confirm deadlock happens.
  constexpr std::int64_t kN = 10;
  Network network;
  auto source = network.make_channel({.capacity = 64, .label = "source"});
  auto multiples = network.make_channel({.capacity = 8, .label = "multiples"});
  auto others = network.make_channel({.capacity = 8, .label = "others"});  // too small for N-1=9
  auto merged = network.make_channel({.capacity = 64, .label = "merged"});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();

  network.add(std::make_shared<Sequence>(1, source->output(), 200));
  network.add(std::make_shared<RouteByDivisibility>(
      source->input(), multiples->output(), others->output(), kN));
  network.add(std::make_shared<OrderedMerge>(
      std::vector{multiples->input(), others->input()}, merged->output(),
      /*eliminate_duplicates=*/false));
  network.add(std::make_shared<Collect>(merged->input(), sink));

  MonitorOptions options;
  options.growth_factor = 0;  // never grow: watch it declare deadlock
  options.max_channel_capacity = 0;
  options.abort_on_true_deadlock = true;
  network.enable_monitor(options);
  network.run();
  EXPECT_EQ(network.outcome(), DeadlockOutcome::kTrueDeadlock);
  EXPECT_LT(sink->size(), 200u);  // did not complete
}

TEST(Network, FigureThirteenCompletesWithMonitor) {
  // Same graph; the monitor grows the wedged channel (Parks' rule) and
  // the run completes with the full ordered output.
  constexpr std::int64_t kN = 10;
  Network network;
  auto source = network.make_channel({.capacity = 64, .label = "source"});
  auto multiples = network.make_channel({.capacity = 8, .label = "multiples"});
  auto others = network.make_channel({.capacity = 8, .label = "others"});
  auto merged = network.make_channel({.capacity = 64, .label = "merged"});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();

  network.add(std::make_shared<Sequence>(1, source->output(), 200));
  network.add(std::make_shared<RouteByDivisibility>(
      source->input(), multiples->output(), others->output(), kN));
  network.add(std::make_shared<OrderedMerge>(
      std::vector{multiples->input(), others->input()}, merged->output(),
      /*eliminate_duplicates=*/false));
  network.add(std::make_shared<Collect>(merged->input(), sink));

  network.enable_monitor(MonitorOptions{});
  network.run();
  EXPECT_EQ(network.outcome(), DeadlockOutcome::kGrown);
  EXPECT_GE(network.growth_events(), 1u);
  const auto values = sink->values();
  ASSERT_EQ(values.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(values[i], i + 1);
}

TEST(Network, TrueDeadlockDetectedOnCycle) {
  // Two processes each waiting to read from the other: a real deadlock
  // that no buffer growth can fix.
  Network network;
  auto ab = network.make_channel({.capacity = 16, .label = "ab"});
  auto ba = network.make_channel({.capacity = 16, .label = "ba"});

  class Echo final : public IterativeProcess {
   public:
    Echo(std::shared_ptr<ChannelInputStream> in,
         std::shared_ptr<ChannelOutputStream> out) {
      track_input(std::move(in));
      track_output(std::move(out));
    }
    std::string type_name() const override { return "test.Echo"; }
    void write_fields(serial::ObjectOutputStream&) const override {}

   protected:
    void step() override {
      io::DataInputStream in{input(0)};
      io::DataOutputStream out{output(0)};
      out.write_i64(in.read_i64());  // reads first: both block forever
    }
  };

  network.add(std::make_shared<Echo>(ab->input(), ba->output()));
  network.add(std::make_shared<Echo>(ba->input(), ab->output()));
  network.enable_monitor(MonitorOptions{});
  network.run();
  EXPECT_EQ(network.outcome(), DeadlockOutcome::kTrueDeadlock);
}

// --- Determinacy ---------------------------------------------------------------

TEST(Network, DeterminateAcrossCapacities) {
  // Kahn's theorem, operationally: the channel history must not depend on
  // buffer sizes or scheduling.  Run the same graph with many capacities
  // and compare histories.
  std::vector<std::int64_t> reference;
  for (const std::size_t capacity : {1u, 2u, 3u, 8u, 64u, 4096u}) {
    Network network;
    auto a = network.make_channel({.capacity = capacity});
    auto b = network.make_channel({.capacity = capacity});
    auto c = network.make_channel({.capacity = capacity});
    auto sink = std::make_shared<CollectSink<std::int64_t>>();
    network.add(std::make_shared<Sequence>(0, a->output(), 64));
    network.add(std::make_shared<Identity>(a->input(), b->output()));
    network.add(std::make_shared<Identity>(b->input(), c->output()));
    network.add(std::make_shared<Collect>(c->input(), sink));
    network.run();
    if (reference.empty()) {
      reference = sink->values();
    } else {
      EXPECT_EQ(sink->values(), reference) << "capacity " << capacity;
    }
  }
  EXPECT_EQ(reference.size(), 64u);
}

}  // namespace
}  // namespace dpn::core
