#include <gtest/gtest.h>

#include <mutex>

#include "cluster/cluster.hpp"
#include "factor/factor.hpp"
#include "support/stopwatch.hpp"

namespace dpn::cluster {
namespace {

TEST(Table1, ClassesMatchThePaper) {
  const auto& classes = table1_classes();
  ASSERT_EQ(classes.size(), 5u);
  EXPECT_EQ(classes[0].name, 'A');
  EXPECT_NEAR(classes[0].speed, 1.93, 0.01);  // 2.4 GHz P4
  EXPECT_NEAR(classes[1].speed, 1.71, 0.01);  // 2.2 GHz P4
  EXPECT_DOUBLE_EQ(classes[2].speed, 1.00);   // 1 GHz PIII reference
  EXPECT_NEAR(classes[3].speed, 0.99, 0.01);
  EXPECT_NEAR(classes[4].speed, 0.80, 0.01);  // 700 MHz Xeon
}

TEST(Fleet, ThirtyFourCpusFastestFirst) {
  const auto speeds = fleet_speeds();
  ASSERT_EQ(speeds.size(), 34u);
  // Non-increasing (fastest classes are used first, Section 5.2).
  for (std::size_t i = 1; i < speeds.size(); ++i) {
    EXPECT_LE(speeds[i], speeds[i - 1]);
  }
  // The Figure 20 inflection points: worker 8 is the first class-C CPU,
  // worker 27 the first class-E CPU (1-based as in the paper).
  EXPECT_GT(speeds[6], 1.05);             // worker 7: still class B
  EXPECT_DOUBLE_EQ(speeds[7], 1.00);      // worker 8: first class C
  EXPECT_GT(speeds[25], 0.9);             // worker 26: class D
  EXPECT_NEAR(speeds[26], 0.80, 0.01);    // worker 27: first class E
}

TEST(IdealModel, SpeedAccumulates) {
  EXPECT_NEAR(ideal_speed(1), 1.93, 0.01);
  EXPECT_NEAR(ideal_speed(2), 1.93 + 1.71, 0.02);
  // Paper Table 2 ideal speeds: 4 -> 7.08, 8 -> 13.22, 16 -> 21.22,
  // 32 -> 35.97.
  EXPECT_NEAR(ideal_speed(4), 7.08, 0.05);
  EXPECT_NEAR(ideal_speed(8), 13.22, 0.1);
  EXPECT_NEAR(ideal_speed(16), 21.22, 0.1);
  EXPECT_NEAR(ideal_speed(32), 35.97, 0.3);
}

TEST(IdealModel, TimeScalesInversely) {
  const double base = 100.0;
  EXPECT_GT(ideal_time(base, 1), ideal_time(base, 2));
  EXPECT_NEAR(ideal_time(base, 1) / ideal_time(base, 4),
              ideal_speed(4) / ideal_speed(1), 1e-9);
  EXPECT_DOUBLE_EQ(ideal_time(base, 0), base);
}

TEST(ThrottledWorker, SlowerSpeedTakesLonger) {
  // Two single-worker runs over the same workload: speed 0.5 must take
  // roughly twice as long as speed 1.0.
  const auto problem = factor::FactorProblem::generate(3, 64, 6);
  const double task_seconds = 0.01;

  auto timed_run = [&](double speed) {
    std::mutex mutex;
    int results = 0;
    auto graph = par::pipeline(
        std::make_shared<factor::FactorProducerTask>(problem.n, 6),
        [&](const std::shared_ptr<core::Task>&) {
          std::scoped_lock lock{mutex};
          ++results;
        },
        [&](auto in, auto out) {
          return par::meta_dynamic(
              std::move(in), std::move(out), 1,
              throttled_factory({speed}, task_seconds));
        });
    Stopwatch watch;
    graph->run();
    EXPECT_EQ(results, 6);
    return watch.elapsed_seconds();
  };

  const double fast = timed_run(1.0);
  const double slow = timed_run(0.5);
  EXPECT_GE(fast, 6 * task_seconds * 0.9);
  EXPECT_GT(slow, fast * 1.5);
  EXPECT_LT(slow, fast * 3.5);
}

TEST(ThrottledWorker, DynamicBalancingSkewsTaskCounts) {
  // A fast and a slow worker under on-demand balancing: the fast worker
  // must end up processing more tasks (Section 5's core claim).
  const auto problem = factor::FactorProblem::generate(4, 64, 24);
  std::vector<std::shared_ptr<ThrottledWorker>> workers;
  std::mutex workers_mutex;
  auto factory = [&](std::size_t index,
                     std::shared_ptr<core::ChannelInputStream> in,
                     std::shared_ptr<core::ChannelOutputStream> out)
      -> std::shared_ptr<core::Process> {
    const double speed = index == 0 ? 4.0 : 1.0;
    auto worker = std::make_shared<ThrottledWorker>(
        std::move(in), std::move(out), speed, 0.005);
    std::scoped_lock lock{workers_mutex};
    workers.push_back(worker);
    return worker;
  };
  auto graph = par::pipeline(
      std::make_shared<factor::FactorProducerTask>(problem.n, 24),
      [](const std::shared_ptr<core::Task>&) {}, [&](auto in, auto out) {
        return par::meta_dynamic(std::move(in), std::move(out), 2, factory);
      });
  graph->run();

  ASSERT_EQ(workers.size(), 2u);
  const auto fast = workers[0]->tasks_processed();
  const auto slow = workers[1]->tasks_processed();
  EXPECT_EQ(fast + slow, 24u);
  EXPECT_GT(fast, slow);
}

TEST(ThrottledWorker, StaticBalancingSplitsEvenly) {
  const auto problem = factor::FactorProblem::generate(5, 64, 24);
  std::vector<std::shared_ptr<ThrottledWorker>> workers;
  std::mutex workers_mutex;
  auto factory = [&](std::size_t index,
                     std::shared_ptr<core::ChannelInputStream> in,
                     std::shared_ptr<core::ChannelOutputStream> out)
      -> std::shared_ptr<core::Process> {
    const double speed = index == 0 ? 4.0 : 1.0;
    auto worker = std::make_shared<ThrottledWorker>(
        std::move(in), std::move(out), speed, 0.002);
    std::scoped_lock lock{workers_mutex};
    workers.push_back(worker);
    return worker;
  };
  auto graph = par::pipeline(
      std::make_shared<factor::FactorProducerTask>(problem.n, 24),
      [](const std::shared_ptr<core::Task>&) {}, [&](auto in, auto out) {
        return par::meta_static(std::move(in), std::move(out), 2, factory);
      });
  graph->run();

  ASSERT_EQ(workers.size(), 2u);
  EXPECT_EQ(workers[0]->tasks_processed(), 12u);  // lock-step halves
  EXPECT_EQ(workers[1]->tasks_processed(), 12u);
}

TEST(ThrottledWorker, RejectsNonPositiveSpeed) {
  auto ch1 = std::make_shared<core::Channel>(64);
  auto ch2 = std::make_shared<core::Channel>(64);
  EXPECT_THROW(ThrottledWorker(ch1->input(), ch2->output(), 0.0, 0.01),
               UsageError);
}

TEST(Factory, IndexBeyondFleetThrows) {
  auto factory = throttled_factory({1.0, 2.0}, 0.01);
  auto ch1 = std::make_shared<core::Channel>(64);
  auto ch2 = std::make_shared<core::Channel>(64);
  EXPECT_THROW(factory(2, ch1->input(), ch2->output()), UsageError);
}

TEST(SequentialThrottled, TimeInverseToSpeed) {
  const auto problem = factor::FactorProblem::generate(6, 64, 5);
  const double t1 =
      run_sequential_throttled(problem.n, 5, 32, 1.0, 0.004);
  const double t2 =
      run_sequential_throttled(problem.n, 5, 32, 2.0, 0.004);
  EXPECT_NEAR(t1 / t2, 2.0, 0.8);
  EXPECT_GE(t1, 5 * 0.004 * 0.9);
}

}  // namespace
}  // namespace dpn::cluster
