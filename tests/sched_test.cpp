#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/channel.hpp"
#include "core/network.hpp"
#include "core/process.hpp"
#include "io/data.hpp"
#include "io/pipe.hpp"
#include "processes/basic.hpp"
#include "processes/sieve.hpp"
#include "sched/queue.hpp"
#include "sched/scheduler.hpp"
#include "support/error.hpp"

namespace {

using dpn::UsageError;
using dpn::core::Network;
using dpn::processes::Collect;
using dpn::processes::CollectSink;
using dpn::processes::Sequence;
using dpn::processes::Sift;
namespace sched = dpn::sched;

sched::SchedulerOptions mn_options(unsigned workers) {
  sched::SchedulerOptions options;
  options.mode = sched::SchedMode::kWorkSteal;
  options.workers = workers;
  return options;
}

// --- SchedulerOptions / stack configuration (DPN_STACK_KB) ------------------

TEST(SchedulerOptions, StackSizeDefaultsAndExplicitOverride) {
  unsetenv("DPN_STACK_KB");
  sched::SchedulerOptions options;
  EXPECT_EQ(options.resolved_stack_bytes(),
            sched::SchedulerOptions::kDefaultStackKb * 1024);
  options.stack_kb = 64;
  EXPECT_EQ(options.resolved_stack_bytes(), 64u * 1024);
}

TEST(SchedulerOptions, SubMinimumStackIsRejected) {
  sched::SchedulerOptions options;
  options.stack_kb = sched::SchedulerOptions::kMinStackKb - 1;
  EXPECT_THROW(options.resolved_stack_bytes(), UsageError);
  // The rejection also fires at scheduler construction ...
  EXPECT_THROW(sched::Scheduler{options}, UsageError);
  // ... and at Network configuration time.
  Network network;
  EXPECT_THROW(network.set_scheduler(options), UsageError);
}

TEST(SchedulerOptions, EnvStackOverride) {
  setenv("DPN_STACK_KB", "256", 1);
  sched::SchedulerOptions options;
  EXPECT_EQ(options.resolved_stack_bytes(), 256u * 1024);
  // An explicit stack_kb beats the environment.
  options.stack_kb = 32;
  EXPECT_EQ(options.resolved_stack_bytes(), 32u * 1024);
  // A sub-minimum environment value is rejected, not silently clamped.
  setenv("DPN_STACK_KB", "4", 1);
  options.stack_kb = 0;
  EXPECT_THROW(options.resolved_stack_bytes(), UsageError);
  unsetenv("DPN_STACK_KB");
}

TEST(SchedulerOptions, EnvModeSelection) {
  setenv("DPN_SCHED", "mn", 1);
  EXPECT_EQ(sched::SchedulerOptions::from_env().mode,
            sched::SchedMode::kWorkSteal);
  setenv("DPN_SCHED", "threads", 1);
  EXPECT_EQ(sched::SchedulerOptions::from_env().mode,
            sched::SchedMode::kThreadPerProcess);
  setenv("DPN_SCHED", "bogus", 1);
  EXPECT_EQ(sched::SchedulerOptions::from_env().mode,
            sched::SchedMode::kThreadPerProcess);
  unsetenv("DPN_SCHED");
  setenv("DPN_WORKERS", "3", 1);
  EXPECT_EQ(sched::SchedulerOptions::from_env().workers, 3u);
  unsetenv("DPN_WORKERS");
}

// --- Fiber execution --------------------------------------------------------

TEST(Scheduler, RunsFibersToCompletionAndQuiesces) {
  sched::Scheduler scheduler{mn_options(2)};
  std::atomic<int> sum{0};
  for (int i = 0; i < 500; ++i) {
    scheduler.spawn([&sum] { sum.fetch_add(1); });
  }
  scheduler.wait_quiescent();
  EXPECT_EQ(sum.load(), 500);
  EXPECT_EQ(scheduler.live_fibers(), 0u);
  const sched::Scheduler::Counters counters = scheduler.counters();
  EXPECT_EQ(counters.spawned, 500u);
  EXPECT_EQ(counters.completed, 500u);
  EXPECT_GE(counters.dispatches, 500u);
}

TEST(Scheduler, OnFiberOnlyOnWorkers) {
  EXPECT_FALSE(sched::on_fiber());
  EXPECT_EQ(sched::Scheduler::current(), nullptr);
  EXPECT_FALSE(sched::spawn_detached([] {}));  // off-worker: caller falls back

  sched::Scheduler scheduler{mn_options(1)};
  std::atomic<bool> was_on_fiber{false};
  scheduler.spawn([&was_on_fiber] { was_on_fiber = sched::on_fiber(); });
  scheduler.wait_quiescent();
  EXPECT_TRUE(was_on_fiber.load());
}

TEST(Scheduler, FibersSpawnDetachedSiblings) {
  sched::Scheduler scheduler{mn_options(2)};
  std::atomic<int> done{0};
  scheduler.spawn([&done] {
    for (int i = 0; i < 32; ++i) {
      EXPECT_TRUE(sched::spawn_detached([&done] { done.fetch_add(1); }));
    }
  });
  scheduler.wait_quiescent();
  EXPECT_EQ(done.load(), 32);
  EXPECT_EQ(scheduler.counters().completed, 33u);
}

TEST(Scheduler, EscapedExceptionsAreContained) {
  sched::Scheduler scheduler{mn_options(1)};
  std::atomic<int> after{0};
  scheduler.spawn([] { throw std::runtime_error{"escaped"}; });
  scheduler.spawn([&after] { after.fetch_add(1); });
  scheduler.wait_quiescent();
  EXPECT_EQ(after.load(), 1);  // the worker survived the throwing fiber
}

TEST(Scheduler, ManyFibersOnFewWorkers) {
  // 10k fibers on 2 workers: the whole point of M:N.  Thread-per-process
  // at this size would need ~80 GB of reserved stack.
  sched::SchedulerOptions options = mn_options(2);
  options.stack_kb = 16;
  sched::Scheduler scheduler{options};
  std::atomic<std::int64_t> sum{0};
  for (int i = 0; i < 10000; ++i) {
    scheduler.spawn([&sum, i] { sum.fetch_add(i); });
  }
  scheduler.wait_quiescent();
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

// --- Pipe integration: run-to-block + wakeup handshake ----------------------

TEST(Scheduler, PipeBlockingSuspendsAndResumesFibers) {
  sched::Scheduler scheduler{mn_options(2)};
  // Tiny pipe so the writer run-to-blocks constantly.
  auto pipe = std::make_shared<dpn::io::Pipe>(8);
  constexpr int kBytes = 4096;
  std::vector<std::uint8_t> received;
  scheduler.spawn([pipe] {
    for (int i = 0; i < kBytes; ++i) {
      const auto b = static_cast<std::uint8_t>(i & 0xff);
      pipe->write({&b, 1});
    }
    pipe->close_write();
  });
  scheduler.spawn([pipe, &received] {
    std::uint8_t chunk[64];
    for (;;) {
      const std::size_t n = pipe->read_some({chunk, sizeof chunk});
      if (n == 0) break;
      received.insert(received.end(), chunk, chunk + n);
    }
  });
  scheduler.wait_quiescent();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kBytes));
  for (int i = 0; i < kBytes; ++i) {
    ASSERT_EQ(received[static_cast<std::size_t>(i)],
              static_cast<std::uint8_t>(i & 0xff));
  }
}

TEST(Scheduler, PipeAbortWakesSuspendedFiber) {
  sched::Scheduler scheduler{mn_options(1)};
  auto pipe = std::make_shared<dpn::io::Pipe>(8);
  std::atomic<bool> interrupted{false};
  scheduler.spawn([pipe, &interrupted] {
    std::uint8_t chunk[8];
    try {
      pipe->read_some({chunk, sizeof chunk});  // empty pipe: suspends
    } catch (const dpn::Interrupted&) {
      interrupted = true;
    }
  });
  // Give the fiber time to park, then abort from off-scheduler.
  while (pipe->blocked_readers() == 0) std::this_thread::yield();
  pipe->abort();
  scheduler.wait_quiescent();
  EXPECT_TRUE(interrupted.load());
}

TEST(Scheduler, MixedFiberAndThreadWaitersCoexist) {
  // A fiber produces, a plain OS thread consumes: the cv path and the
  // fiber path share one pipe.
  sched::Scheduler scheduler{mn_options(1)};
  auto pipe = std::make_shared<dpn::io::Pipe>(4);
  scheduler.spawn([pipe] {
    for (int i = 0; i < 100; ++i) {
      const auto b = static_cast<std::uint8_t>(i);
      pipe->write({&b, 1});
    }
    pipe->close_write();
  });
  std::size_t total = 0;
  std::jthread consumer{[pipe, &total] {
    std::uint8_t chunk[16];
    while (const std::size_t n = pipe->read_some({chunk, sizeof chunk})) {
      total += n;
    }
  }};
  consumer.join();
  scheduler.wait_quiescent();
  EXPECT_EQ(total, 100u);
}

TEST(Scheduler, BlockingQueuePopSuspendsFiber) {
  // The Turnstile deadlock shape: a fiber pops from an empty queue that
  // only plain threads feed.  The pop must suspend the fiber (not wedge
  // the lone worker) so other fibers keep running meanwhile.
  sched::Scheduler scheduler{mn_options(1)};
  sched::BlockingQueue<int> queue;
  std::atomic<int> sum{0};
  std::atomic<int> side_work{0};
  scheduler.spawn([&queue, &sum] {
    while (auto item = queue.pop()) sum.fetch_add(*item);
  });
  // If the popping fiber held the worker hostage this fiber never runs.
  scheduler.spawn([&side_work] { side_work.store(1); });
  while (side_work.load() == 0) std::this_thread::yield();
  std::jthread producer{[&queue] {
    for (int i = 1; i <= 100; ++i) queue.push(i);
    queue.close();
  }};
  producer.join();
  scheduler.wait_quiescent();
  EXPECT_EQ(sum.load(), 5050);
}

// --- WaitGroup --------------------------------------------------------------

TEST(WaitGroup, FiberAndThreadWaiters) {
  sched::Scheduler scheduler{mn_options(2)};
  sched::WaitGroup group;
  group.add(3);
  std::atomic<int> fired{0};
  for (int i = 0; i < 3; ++i) {
    scheduler.spawn([&group, &fired] {
      fired.fetch_add(1);
      group.done();
    });
  }
  group.wait();  // plain-thread wait
  EXPECT_EQ(fired.load(), 3);

  // Fiber-side wait: a fiber parks on the group without pinning a worker.
  sched::WaitGroup inner;
  inner.add(1);
  std::atomic<bool> waited{false};
  scheduler.spawn([&inner, &waited] {
    inner.wait();
    waited = true;
  });
  scheduler.spawn([&inner] { inner.done(); });
  scheduler.wait_quiescent();
  EXPECT_TRUE(waited.load());
}

// --- Network integration ----------------------------------------------------

TEST(SchedNetwork, SequenceToCollectUnderWorkSteal) {
  Network network;
  network.set_scheduler(mn_options(2));
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.connect(
      [&](auto out) { return std::make_shared<Sequence>(0, out, 100); },
      [&](auto in) { return std::make_shared<Collect>(in, sink); },
      {.capacity = 64, .label = "seq"});
  network.run();
  const std::vector<std::int64_t> values = sink->values();
  ASSERT_EQ(values.size(), 100u);
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(values[static_cast<std::size_t>(i)], i);
  }
  const dpn::obs::NetworkSnapshot snap = network.snapshot();
  EXPECT_EQ(snap.sched_workers, 2u);
  EXPECT_GE(snap.sched_spawned, 2u);
  EXPECT_EQ(snap.sched_spawned, snap.sched_completed);
  EXPECT_GE(snap.sched_dispatches, snap.sched_spawned);
}

TEST(SchedNetwork, SieveInsertsFiltersAsDetachedFibers) {
  // Sift reconfigures the graph at runtime (Figure 8); under the M:N
  // scheduler its inserted Modulo processes must become fibers, not
  // threads -- every insertion past sched_spawned's initial 3 proves it.
  Network network;
  network.set_scheduler(mn_options(2));
  auto numbers = network.make_channel({.capacity = 64, .label = "numbers"});
  auto primes = network.make_channel({.capacity = 64, .label = "primes"});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto sift = std::make_shared<Sift>(numbers->input(), primes->output());
  network.add(std::make_shared<Sequence>(2, numbers->output(), 99));  // 2..100
  network.add(sift);
  network.add(std::make_shared<Collect>(primes->input(), sink));
  network.run();
  const std::vector<std::int64_t> expected{2,  3,  5,  7,  11, 13, 17, 19, 23,
                                           29, 31, 37, 41, 43, 47, 53, 59, 61,
                                           67, 71, 73, 79, 83, 89, 97};
  EXPECT_EQ(sink->values(), expected);
  EXPECT_EQ(sift->filters_inserted(), expected.size());
  // 3 top-level processes + one detached fiber per inserted filter.
  EXPECT_EQ(network.snapshot().sched_spawned, 3u + expected.size());
}

TEST(SchedNetwork, ThreadModeRefusesOversizedGraph) {
  Network network;
  sched::SchedulerOptions options;  // thread-per-process
  options.max_threads = 2;
  network.set_scheduler(options);
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto mid = network.make_channel({.capacity = 64, .label = "a"});
  auto out = network.make_channel({.capacity = 64, .label = "b"});
  network.add(std::make_shared<Sequence>(0, mid->output(), 10));
  network.add(std::make_shared<dpn::processes::Modulo>(mid->input(),
                                                       out->output(), 2));
  network.add(std::make_shared<Collect>(out->input(), sink));
  EXPECT_THROW(network.start(), UsageError);
}

TEST(SchedNetwork, CompositeRunsComponentsAsSiblingFibers) {
  Network network;
  network.set_scheduler(mn_options(2));
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto composite = std::make_shared<dpn::core::CompositeProcess>();
  auto channel = network.make_channel({.capacity = 64, .label = "inner"});
  composite->add(std::make_shared<Sequence>(0, channel->output(), 50));
  composite->add(std::make_shared<Collect>(channel->input(), sink));
  network.add(composite);
  network.run();
  EXPECT_EQ(sink->values().size(), 50u);
  // The composite plus its two components all ran as fibers.
  EXPECT_GE(network.snapshot().sched_spawned, 3u);
}

}  // namespace
