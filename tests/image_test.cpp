#include <gtest/gtest.h>

#include "image/codec.hpp"
#include "image/image.hpp"
#include "image/tasks.hpp"
#include "serial/serial.hpp"

namespace dpn::image {
namespace {

TEST(Image, PixelAccess) {
  Image img{4, 3};
  img.set(2, 1, 200);
  EXPECT_EQ(img.at(2, 1), 200);
  EXPECT_EQ(img.at(0, 0), 0);
  EXPECT_EQ(img.pixels().size(), 12u);
}

TEST(Image, SyntheticDeterministic) {
  const Image a = synthetic_image(64, 48, 7);
  const Image b = synthetic_image(64, 48, 7);
  const Image c = synthetic_image(64, 48, 8);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Image, BlockGridCoversExactly) {
  for (const auto& [w, h] : {std::pair<std::size_t, std::size_t>{64, 48},
                            {65, 48}, {64, 49}, {1, 1}, {15, 17}, {16, 16}}) {
    const Image img{w, h};
    const auto grid = block_grid(img, 16);
    std::size_t covered = 0;
    for (const BlockRect& rect : grid) {
      EXPECT_LE(rect.x + rect.width, w);
      EXPECT_LE(rect.y + rect.height, h);
      EXPECT_GE(rect.width, 1u);
      EXPECT_LE(rect.width, 16u);
      covered += rect.width * rect.height;
    }
    EXPECT_EQ(covered, w * h) << w << "x" << h;
  }
}

TEST(Image, ExtractInsertRoundTrip) {
  Image img = synthetic_image(40, 40, 3);
  Image copy{40, 40};
  for (const BlockRect& rect : block_grid(img, 16)) {
    const ByteVector block = extract_block(img, rect);
    insert_block(copy, rect, {block.data(), block.size()});
  }
  EXPECT_EQ(copy, img);
}

class CodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(CodecRoundTrip, BlockLossless) {
  const auto [w, h, smoothness] = GetParam();
  const Image img = synthetic_image(static_cast<std::size_t>(w),
                                    static_cast<std::size_t>(h),
                                    static_cast<std::uint64_t>(w * h),
                                    smoothness);
  const ByteVector pixels = img.pixels();
  const ByteVector compressed = compress_block(
      {pixels.data(), pixels.size()}, img.width(), img.height());
  std::size_t rw = 0, rh = 0;
  const ByteVector restored =
      decompress_block({compressed.data(), compressed.size()}, &rw, &rh);
  EXPECT_EQ(rw, img.width());
  EXPECT_EQ(rh, img.height());
  EXPECT_EQ(restored, pixels);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CodecRoundTrip,
    ::testing::Values(std::tuple{16, 16, 1.0}, std::tuple{16, 16, 0.5},
                      std::tuple{16, 16, 0.0}, std::tuple{1, 1, 1.0},
                      std::tuple{16, 3, 0.9}, std::tuple{5, 16, 0.9},
                      std::tuple{255, 2, 0.7}));

TEST(Codec, SmoothBlocksCompress) {
  // A 16x16 tile of a large smooth image has per-pixel deltas of a few
  // levels: nibble mode should roughly halve it.
  const Image big = synthetic_image(256, 256, 5, /*smoothness=*/1.0);
  const BlockRect rect{64, 64, 16, 16};
  const ByteVector pixels = extract_block(big, rect);
  const ByteVector compressed =
      compress_block({pixels.data(), pixels.size()}, 16, 16);
  EXPECT_LT(compressed.size(), pixels.size() * 3 / 4);
}

TEST(Codec, ConstantBlockCompressesHard) {
  Image img{16, 16};
  for (auto& p : img.pixels()) p = 77;
  const ByteVector compressed = compress_block(
      {img.pixels().data(), img.pixels().size()}, 16, 16);
  EXPECT_LT(compressed.size(), 10u);  // header + first pixel + one run
}

TEST(Codec, NoiseFallsBackToRaw) {
  const Image img = synthetic_image(16, 16, 5, /*smoothness=*/0.0);
  const ByteVector compressed = compress_block(
      {img.pixels().data(), img.pixels().size()}, 16, 16);
  // Raw mode: 3-byte header + pixels, never pathologically larger.
  EXPECT_LE(compressed.size(), img.pixels().size() + 3);
}

TEST(Codec, RejectsBadInput) {
  const ByteVector tiny{1};
  EXPECT_THROW(decompress_block({tiny.data(), tiny.size()}, nullptr, nullptr),
               SerializationError);
  const ByteVector bad_mode{9, 2, 2, 0, 0, 0, 0};
  EXPECT_THROW(
      decompress_block({bad_mode.data(), bad_mode.size()}, nullptr, nullptr),
      SerializationError);
  ByteVector pixels(10);
  EXPECT_THROW(compress_block({pixels.data(), pixels.size()}, 3, 3),
               UsageError);
}

TEST(Codec, TruncatedRleRejected) {
  // A constant block has all-zero residuals -> guaranteed RLE mode.
  Image img{16, 16};
  for (auto& p : img.pixels()) p = 128;
  ByteVector compressed = compress_block(
      {img.pixels().data(), img.pixels().size()}, 16, 16);
  ASSERT_EQ(compressed[0], 1);  // RLE mode
  compressed.resize(compressed.size() / 2);
  EXPECT_THROW(
      decompress_block({compressed.data(), compressed.size()}, nullptr,
                       nullptr),
      SerializationError);
}

TEST(Codec, ImageArchiveRoundTrip) {
  for (const double smoothness : {1.0, 0.7, 0.0}) {
    const Image img = synthetic_image(130, 94, 11, smoothness);
    const ByteVector archive = compress_image(img);
    const Image restored = decompress_image({archive.data(), archive.size()});
    EXPECT_EQ(restored, img);
  }
}

TEST(Codec, ArchiveDetectsCorruption) {
  const Image img = synthetic_image(64, 64, 12);
  ByteVector archive = compress_image(img);
  archive[0] ^= 0xff;  // break the magic
  EXPECT_THROW(decompress_image({archive.data(), archive.size()}),
               SerializationError);
}

// --- Tasks and the parallel pipeline -------------------------------------------

TEST(Tasks, BlockTaskProducesDecodableResult) {
  const Image img = synthetic_image(16, 16, 13);
  BlockTask task{7, img.pixels(), 16, 16};
  auto result = std::dynamic_pointer_cast<CompressedBlockTask>(task.run());
  ASSERT_TRUE(result);
  EXPECT_EQ(result->index(), 7u);
  const ByteVector pixels = decompress_block(
      {result->compressed().data(), result->compressed().size()}, nullptr,
      nullptr);
  EXPECT_EQ(pixels, img.pixels());
}

TEST(Tasks, SerializationRoundTrip) {
  const Image img = synthetic_image(33, 17, 14);
  auto producer = std::make_shared<ImageProducerTask>(img, 16);
  producer->run();  // advance one block so mid-run state ships
  const ByteVector bytes = serial::to_bytes(producer);
  auto restored =
      serial::from_bytes_as<ImageProducerTask>({bytes.data(), bytes.size()});
  // The restored producer continues from block 1, as the original does.
  auto a = std::dynamic_pointer_cast<BlockTask>(producer->run());
  auto b = std::dynamic_pointer_cast<BlockTask>(restored->run());
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  EXPECT_EQ(a->index(), b->index());
}

class ParallelCompress : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelCompress, MatchesSequentialByteForByte) {
  const std::size_t workers = GetParam();
  const Image img = synthetic_image(128, 96, 15, 0.8);
  const ByteVector reference = compress_image(img);

  const ByteVector via_static =
      compress_image_parallel(img, workers, /*dynamic=*/false);
  const ByteVector via_dynamic =
      compress_image_parallel(img, workers, /*dynamic=*/true);

  // The paper's order guarantee, applied: parallel output is identical to
  // the sequential file, regardless of schema or worker count.
  EXPECT_EQ(via_static, reference);
  EXPECT_EQ(via_dynamic, reference);

  const Image restored =
      decompress_image({via_dynamic.data(), via_dynamic.size()});
  EXPECT_EQ(restored, img);
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelCompress,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace dpn::image
