#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/network.hpp"
#include "dist/node.hpp"
#include "dist/remote_streams.hpp"
#include "dist/ship.hpp"
#include "fault/fault.hpp"
#include "io/memory.hpp"
#include "image/codec.hpp"
#include "net/frames.hpp"
#include "net/transport.hpp"
#include "obs/snapshot.hpp"
#include "par/generic.hpp"
#include "par/schema.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "rmi/compute_server.hpp"
#include "rmi/registry.hpp"
#include "serial/serial.hpp"

/// Failure injection: sockets killed mid-stream, corrupt and truncated
/// wire data, dead infrastructure, double closes, hostile inputs.  The
/// invariant under test everywhere: failures surface as IoError-family
/// exceptions (which the runtime converts into clean process stops and
/// cascading termination) -- never as crashes, hangs, or silent
/// corruption.
namespace dpn {
namespace {

using core::Channel;
using processes::Collect;
using processes::CollectSink;
using processes::Identity;
using processes::Sequence;

// --- Socket-level failures -------------------------------------------------------

TEST(Failure, SocketKilledMidStreamStopsConsumerCleanly) {
  // A producer's node dies (socket hard-closed without FIN); the consumer
  // sees end-of-stream after the delivered prefix, not a crash.
  auto node_a = dist::NodeContext::create();
  auto node_b = dist::NodeContext::create();

  auto ch = std::make_shared<Channel>(256);
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto source = std::make_shared<Sequence>(0, ch->output());  // unbounded
  auto drain = std::make_shared<Collect>(ch->input(), sink);

  const ByteVector shipment = dist::ship_process(node_a, source);
  auto remote = std::dynamic_pointer_cast<core::IterativeProcess>(
      dist::receive_process(node_b, {shipment.data(), shipment.size()}));
  ASSERT_TRUE(remote);

  std::jthread host_b{[&] { remote->run(); }};
  std::jthread drainer{[&] { drain->run(); }};
  while (sink->size() < 20) std::this_thread::yield();

  // Kill the producer the hard way: park it, then drop every reference
  // (its socket closes with the object graph; no FIN frame is sent).
  remote->request_pause();
  ASSERT_TRUE(remote->await_pause());
  remote->abandon();
  host_b.join();
  remote.reset();

  drainer.join();  // EOF after the prefix; Collect stops gracefully
  EXPECT_GE(sink->size(), 20u);
  const auto values = sink->values();
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], static_cast<std::int64_t>(i));  // prefix intact
  }
}

TEST(Failure, ConsumerNodeVanishesKillsProducer) {
  // The inverse: the consumer is dropped; the producer's next write gets
  // ChannelClosed and the graph terminates instead of spinning.
  auto node_a = dist::NodeContext::create();
  auto node_b = dist::NodeContext::create();

  auto ch = std::make_shared<Channel>(256);
  auto drain = std::make_shared<processes::Print>(ch->input());
  const ByteVector shipment = dist::ship_process(node_a, drain);
  auto remote = dist::receive_process(node_b, {shipment.data(),
                                               shipment.size()});

  // Do not run the remote consumer at all; just destroy it.
  remote.reset();

  auto source = std::make_shared<Sequence>(0, ch->output());  // unbounded
  source->run();  // must terminate via ChannelClosed, not hang
  SUCCEED();
}

// --- Corrupt wire data ---------------------------------------------------------

TEST(Failure, SerializerNeverCrashesOnTruncation) {
  // Property: every prefix of a valid object stream either decodes to the
  // object (full length) or throws IoError -- never UB, never success.
  auto point_bytes = [] {
    auto sink = std::make_shared<io::MemoryOutputStream>();
    serial::ObjectOutputStream out{sink};
    out.write_object(std::make_shared<par::StopSignal>());
    return sink->take();
  }();
  for (std::size_t cut = 0; cut < point_bytes.size(); ++cut) {
    ByteVector prefix{point_bytes.begin(),
                      point_bytes.begin() + static_cast<std::ptrdiff_t>(cut)};
    EXPECT_THROW(serial::from_bytes({prefix.data(), prefix.size()}), IoError)
        << "cut at " << cut;
  }
  EXPECT_NO_THROW(
      serial::from_bytes({point_bytes.data(), point_bytes.size()}));
}

TEST(Failure, SerializerSurvivesBitFlips) {
  auto bytes = [] {
    auto sink = std::make_shared<io::MemoryOutputStream>();
    serial::ObjectOutputStream out{sink};
    out.write_object(std::make_shared<par::StopSignal>());
    return sink->take();
  }();
  // Flip every bit position once; decoding must either throw IoError or
  // produce some object -- and never crash.
  for (std::size_t i = 0; i < bytes.size() * 8; ++i) {
    ByteVector mutated = bytes;
    mutated[i / 8] ^= static_cast<std::uint8_t>(1u << (i % 8));
    try {
      auto object = serial::from_bytes({mutated.data(), mutated.size()});
      (void)object;
    } catch (const IoError&) {
    } catch (const std::logic_error&) {
      // UsageError for pathological lengths is acceptable too.
    }
  }
  SUCCEED();
}

TEST(Failure, FrameReaderRejectsGarbage) {
  Xoshiro256 rng{404};
  for (int round = 0; round < 100; ++round) {
    ByteVector junk(1 + rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    net::FrameReader reader{std::make_shared<io::MemoryInputStream>(junk)};
    try {
      for (;;) {
        net::Frame frame = reader.read_frame();
        if (frame.type == net::FrameType::kFin) break;
      }
    } catch (const IoError&) {
      // Truncation / oversized-frame rejection: fine.
    }
  }
  SUCCEED();
}

TEST(Failure, ComputeServerSurvivesGarbageConnection) {
  rmi::ComputeServer server{"garbage-target"};
  {
    net::Socket socket = net::Socket::connect("127.0.0.1", server.port());
    const ByteVector junk{0xff, 0x00, 0x41, 0x42, 0x43};
    socket.write_all({junk.data(), junk.size()});
  }  // closed abruptly
  {
    // An empty connection (connect + immediate close).
    net::Socket socket = net::Socket::connect("127.0.0.1", server.port());
  }
  // The server still works afterwards.
  rmi::ServerHandle handle{rmi::Endpoint{"127.0.0.1", server.port()},
                           nullptr};
  EXPECT_NO_THROW(handle.ping());
  server.stop();
}

TEST(Failure, RendezvousSurvivesGarbageConnection) {
  auto node = dist::NodeContext::create();
  {
    net::Socket socket =
        net::Socket::connect("127.0.0.1", node->rendezvous().port());
    const ByteVector junk{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
    socket.write_all({junk.data(), junk.size()});
  }
  // A legitimate rendezvous still completes afterwards.
  auto promise = node->rendezvous().expect(55);
  std::jthread dialer{[&] {
    dist::RendezvousService::dial("127.0.0.1", node->rendezvous().port(), 55,
                                  node->address());
  }};
  EXPECT_NO_THROW(promise->wait());
}

// --- Dead infrastructure ----------------------------------------------------------

TEST(Failure, RegistryGoneThrowsCleanly) {
  std::uint16_t dead_port = 0;
  {
    rmi::Registry registry{0};
    dead_port = registry.port();
  }  // registry stopped
  rmi::RegistryClient client{"127.0.0.1", dead_port};
  EXPECT_THROW(client.lookup("anything"), NetError);
  EXPECT_THROW(
      rmi::ServerHandle::lookup("127.0.0.1", dead_port, "x", nullptr),
      NetError);
}

TEST(Failure, ServerStopsWhileHostedGraphRuns) {
  // stop() must wait for the hosted graph to finish, not strand it.
  auto client_node = dist::NodeContext::create();
  auto server = std::make_unique<rmi::ComputeServer>("stopper");

  auto ch1 = std::make_shared<Channel>(256);
  auto ch2 = std::make_shared<Channel>(256);
  auto middle = std::make_shared<Identity>(ch1->input(), ch2->output());
  rmi::ServerHandle handle{rmi::Endpoint{"127.0.0.1", server->port()},
                           client_node};
  handle.submit(middle);

  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto source = std::make_shared<Sequence>(0, ch1->output(), 50);
  auto drain = std::make_shared<Collect>(ch2->input(), sink);
  std::jthread src{[&] { source->run(); }};
  drain->run();
  ASSERT_EQ(sink->size(), 50u);

  server->stop();  // graph has terminated; stop() returns promptly
  server.reset();
  SUCCEED();
}

// --- API misuse and double operations ----------------------------------------------

TEST(Failure, DoubleCloseIsIdempotent) {
  Channel channel{64};
  EXPECT_NO_THROW(channel.output()->close());
  EXPECT_NO_THROW(channel.output()->close());
  EXPECT_NO_THROW(channel.input()->close());
  EXPECT_NO_THROW(channel.input()->close());
}

TEST(Failure, WriteAfterOwnCloseThrows) {
  Channel channel{64};
  channel.output()->close();
  io::DataOutputStream out{channel.output()};
  EXPECT_THROW(out.write_i64(1), IoError);
}

TEST(Failure, ReadAfterOwnCloseThrows) {
  Channel channel{64};
  channel.input()->close();
  io::DataInputStream in{channel.input()};
  EXPECT_THROW(in.read_i64(), IoError);
}

TEST(Failure, NetworkAbortUnblocksEverything) {
  core::Network network;
  auto ch = network.make_channel({.capacity = 64});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.add(std::make_shared<Sequence>(0, ch->output()));  // unbounded
  network.add(std::make_shared<Collect>(ch->input(), sink));
  network.start();
  while (sink->size() < 10) std::this_thread::yield();
  network.abort();
  network.join();  // both processes stop on Interrupted
  SUCCEED();
}

TEST(Failure, ImageDecoderRandomFuzz) {
  // decompress_image on random bytes: throws IoError or succeeds, never
  // crashes (success is astronomically unlikely but permitted).
  Xoshiro256 rng{777};
  for (int round = 0; round < 200; ++round) {
    ByteVector junk(rng.below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    try {
      (void)image::decompress_image({junk.data(), junk.size()});
    } catch (const IoError&) {
    } catch (const std::logic_error&) {
    }
  }
  SUCCEED();
}

// --- Fault layer: timeouts, retries, leases, recovery (ctest -L fault) --------
//
// These tests exercise the dpn::fault machinery end to end: connect
// deadlines and injected connect faults, the socket kill-switch, registry
// NACK eviction, compute-server heartbeats/leases, and meta_dynamic's
// worker-failure recovery (byte-identical output after a mid-stream
// worker death).

TEST(Fault, ConnectDeadlineOnBlackholedAddress) {
  // 203.0.113.1 (TEST-NET-3) is guaranteed unrouted: depending on the
  // host's network either the SYN blackholes (deadline fires) or the
  // stack reports unreachable immediately.  Both must surface as NetError
  // well before the old indefinite-block behaviour would.  Some sandboxed
  // environments intercept *all* connects with a transparent proxy; there
  // the deadline path is still covered by the injection test below.
  const auto start = std::chrono::steady_clock::now();
  try {
    net::Socket socket =
        net::Socket::connect("203.0.113.1", 9, std::chrono::milliseconds{300});
    GTEST_SKIP() << "environment routes TEST-NET-3 (transparent proxy); "
                    "deadline behaviour exercised via fault injection";
  } catch (const NetError&) {
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::seconds{5});
  }
}

TEST(Fault, InjectedConnectDelayHonoursDeadline) {
  auto plan = std::make_shared<fault::Plan>();
  plan->delay_connect("10.9.9.9", 4242, std::chrono::seconds{10});
  fault::ScopedPlan scoped{std::move(plan)};
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(
      net::Socket::connect("10.9.9.9", 4242, std::chrono::milliseconds{200}),
      NetError);
  // The injected 10s delay must be clipped to the connect deadline.
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds{5});
}

TEST(Fault, ConnectRetryRecoversAfterInjectedDrops) {
  rmi::Registry registry{0};  // any real listener will do
  auto plan = std::make_shared<fault::Plan>();
  plan->drop_connect("127.0.0.1", registry.port(), 2);
  fault::ScopedPlan scoped{std::move(plan)};

  const std::uint64_t retries_before =
      fault::stats().connect_retries.load(std::memory_order_relaxed);
  fault::RetryPolicy policy;
  policy.initial_backoff = std::chrono::milliseconds{5};
  policy.max_backoff = std::chrono::milliseconds{20};
  // Two injected drops, then success on the third attempt.
  net::Socket socket =
      net::connect_with_retry("127.0.0.1", registry.port(), policy);
  EXPECT_GE(fault::stats().connect_retries.load(std::memory_order_relaxed),
            retries_before + 2);
}

TEST(Fault, RetryExhaustionCountsFailure) {
  auto plan = std::make_shared<fault::Plan>();
  plan->drop_connect("127.0.0.1", 1, -1);  // every attempt refused
  fault::ScopedPlan scoped{std::move(plan)};

  const std::uint64_t failures_before =
      fault::stats().connect_failures.load(std::memory_order_relaxed);
  fault::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::milliseconds{1};
  policy.max_backoff = std::chrono::milliseconds{4};
  EXPECT_THROW(net::connect_with_retry("127.0.0.1", 1, policy), NetError);
  EXPECT_GE(fault::stats().connect_failures.load(std::memory_order_relaxed),
            failures_before + 1);
}

TEST(Fault, RetryBackoffIsDeterministicAndCapped) {
  fault::RetryPolicy policy;
  policy.seed = 42;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const auto first = policy.backoff(attempt);
    const auto again = policy.backoff(attempt);
    EXPECT_EQ(first, again) << "attempt " << attempt;  // same seed, same delay
    EXPECT_GE(first.count(), 0);
    // Capped at max_backoff plus the jitter fraction.
    EXPECT_LE(first.count(),
              static_cast<long>(
                  static_cast<double>(policy.max_backoff.count()) *
                  (1.0 + policy.jitter)) +
                  1);
  }
}

TEST(Fault, SocketKilledAfterByteBudget) {
  net::ServerSocket server{0};
  std::jthread reader{[&] {
    try {
      net::Socket peer = server.accept();
      std::uint8_t buffer[512];
      while (peer.read_some({buffer, sizeof buffer}) > 0) {
      }
    } catch (const std::exception&) {
    }
  }};

  auto plan = std::make_shared<fault::Plan>();
  plan->kill_after_bytes("127.0.0.1", server.port(), 1000, 1);
  fault::ScopedPlan scoped{std::move(plan)};

  net::Socket socket = net::Socket::connect("127.0.0.1", server.port());
  auto flood = [&] {
    const ByteVector chunk(256, 0xAB);
    for (int i = 0; i < 1000; ++i) {
      socket.write_all({chunk.data(), chunk.size()});
    }
  };
  // The budget expires after ~1000 bytes; the metered socket hard-resets
  // and the write surfaces as an IoError, long before 256000 bytes.
  EXPECT_THROW(flood(), IoError);
  server.close();
}

TEST(Fault, MuxConnectionKilledSurfacesWorkerLostPerStream) {
  // Two logical channels ride node B's single mux connection back to
  // node A.  Kill that shared connection after a byte budget: every
  // affected consumer must see WorkerLost promptly -- not a hang, and
  // not a silent truncation dressed up as a clean end-of-stream.
  const net::TransportKind saved = net::network_options().transport;
  net::network_options().transport = net::TransportKind::kMux;
  struct RestoreTransport {
    net::TransportKind saved;
    ~RestoreTransport() { net::network_options().transport = saved; }
  } restore{saved};

  auto node_a = dist::NodeContext::create();
  auto node_b = dist::NodeContext::create();

  auto ch1 = std::make_shared<Channel>(256);
  auto ch2 = std::make_shared<Channel>(256);
  auto sink1 = std::make_shared<CollectSink<std::int64_t>>();
  auto sink2 = std::make_shared<CollectSink<std::int64_t>>();
  auto source1 = std::make_shared<Sequence>(0, ch1->output());    // unbounded
  auto source2 = std::make_shared<Sequence>(100, ch2->output());  // unbounded
  auto drain1 = std::make_shared<Collect>(ch1->input(), sink1);
  auto drain2 = std::make_shared<Collect>(ch2->input(), sink2);

  const ByteVector ship1 = dist::ship_process(node_a, source1);
  const ByteVector ship2 = dist::ship_process(node_a, source2);

  // Budget well past the rendezvous handshakes (~100 bytes) but far
  // short of the producers' unbounded output.  Both dial-backs target
  // node A's rendezvous, so they share one metered connection.
  auto plan = std::make_shared<fault::Plan>();
  plan->kill_after_bytes("127.0.0.1", node_a->rendezvous().port(), 8192, 1);
  fault::ScopedPlan scoped{std::move(plan)};

  auto remote1 = std::dynamic_pointer_cast<core::IterativeProcess>(
      dist::receive_process(node_b, {ship1.data(), ship1.size()}));
  auto remote2 = std::dynamic_pointer_cast<core::IterativeProcess>(
      dist::receive_process(node_b, {ship2.data(), ship2.size()}));
  ASSERT_TRUE(remote1);
  ASSERT_TRUE(remote2);

  // The producers die of ChannelClosed when the connection resets; that
  // side's stop is routine (a lost *consumer* is end-of-demand).
  std::jthread prod1{[&] {
    try {
      remote1->run();
    } catch (const std::exception&) {
    }
  }};
  std::jthread prod2{[&] {
    try {
      remote2->run();
    } catch (const std::exception&) {
    }
  }};

  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(drain1->run(), WorkerLost);
  EXPECT_THROW(drain2->run(), WorkerLost);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds{30});
}

TEST(Fault, RegistryEvictsUnreachableEndpoints) {
  rmi::Registry registry{0};
  rmi::RegistryClient client{"127.0.0.1", registry.port()};
  const rmi::Endpoint dead{"127.0.0.1", 1};

  client.register_name("ghost", dead);
  ASSERT_TRUE(client.lookup("ghost").has_value());

  // Two strikes, then a re-register: the fresh registration wipes the
  // count, so a restarted server is not punished for its predecessor.
  EXPECT_FALSE(client.report_unreachable("ghost", dead));
  EXPECT_FALSE(client.report_unreachable("ghost", dead));
  client.register_name("ghost", dead);
  EXPECT_FALSE(client.report_unreachable("ghost", dead));
  EXPECT_FALSE(client.report_unreachable("ghost", dead));
  EXPECT_TRUE(client.lookup("ghost").has_value());

  // Third consecutive strike against the current endpoint evicts.
  EXPECT_TRUE(client.report_unreachable("ghost", dead));
  EXPECT_FALSE(client.lookup("ghost").has_value());

  // Reports about a *different* endpoint never touch the live entry.
  client.register_name("ghost", dead);
  const rmi::Endpoint elsewhere{"127.0.0.1", 2};
  for (int i = 0; i < 2 * rmi::Registry::kEvictStrikes; ++i) {
    EXPECT_FALSE(client.report_unreachable("ghost", elsewhere));
  }
  EXPECT_TRUE(client.lookup("ghost").has_value());
}

TEST(Fault, LeaseExpiryFailsFastOnSilentServer) {
  // A "server" that accepts streams and never replies: without leases,
  // TaskFuture::get() would hang forever.  Accepting through the default
  // transport (rather than a raw ServerSocket) keeps the dial handshake
  // working under both backends -- a mux client completes its preface
  // against a transport listener, then waits on a reply that never comes.
  auto silent = net::default_transport().listen(0);
  std::vector<std::shared_ptr<net::Stream>> held;
  std::jthread acceptor{[&] {
    try {
      for (;;) held.push_back(silent->accept());
    } catch (const NetError&) {
    }
  }};

  const std::uint64_t expiries_before =
      fault::stats().lease_expiries.load(std::memory_order_relaxed);
  rmi::ServerHandle handle{
      rmi::Endpoint{"127.0.0.1", silent->port()}, nullptr,
      fault::LeaseOptions{std::chrono::milliseconds{50},
                          std::chrono::milliseconds{300}}};
  auto future = handle.submit(std::make_shared<par::StopSignal>());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(future.get(), WorkerLost);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds{10});
  EXPECT_GE(fault::stats().lease_expiries.load(std::memory_order_relaxed),
            expiries_before + 1);
  silent->close();
}

/// A task that takes much longer than the client's patience -- only the
/// server's heartbeats keep the lease alive.
class SlowTask final : public core::Task {
 public:
  std::shared_ptr<core::Task> run() override {
    std::this_thread::sleep_for(std::chrono::milliseconds{700});
    return std::make_shared<par::StopSignal>();
  }
  std::string type_name() const override { return "test.fault.SlowTask"; }
  void write_fields(serial::ObjectOutputStream&) const override {}
  static std::shared_ptr<SlowTask> read_object(serial::ObjectInputStream&) {
    return std::make_shared<SlowTask>();
  }
};

TEST(Fault, HeartbeatsKeepSlowTaskAlive) {
  rmi::ComputeServer server{
      "slowpoke", nullptr,
      fault::LeaseOptions{std::chrono::milliseconds{50},
                          std::chrono::milliseconds{2000}}};
  rmi::ServerHandle handle{
      rmi::Endpoint{"127.0.0.1", server.port()}, nullptr,
      fault::LeaseOptions{std::chrono::milliseconds{50},
                          std::chrono::milliseconds{300}}};
  // The task runs ~700ms against a 300ms patience: without heartbeats
  // this would throw WorkerLost; with them it completes.
  auto result = handle.submit(std::make_shared<SlowTask>()).get();
  EXPECT_TRUE(std::dynamic_pointer_cast<par::StopSignal>(result));
  server.stop();
}

TEST(Fault, SnapshotRoundTripsFaultCounters) {
  obs::NetworkSnapshot snap;
  snap.connect_retries = 7;
  snap.connect_failures = 2;
  snap.tasks_reissued = 3;
  snap.workers_lost = 1;
  snap.lease_expiries = 4;
  snap.registry_evictions = 5;
  snap.faults_injected = 6;
  const ByteVector bytes = snap.encode();
  const auto decoded = obs::NetworkSnapshot::decode({bytes.data(),
                                                     bytes.size()});
  EXPECT_EQ(decoded.connect_retries, 7u);
  EXPECT_EQ(decoded.connect_failures, 2u);
  EXPECT_EQ(decoded.tasks_reissued, 3u);
  EXPECT_EQ(decoded.workers_lost, 1u);
  EXPECT_EQ(decoded.lease_expiries, 4u);
  EXPECT_EQ(decoded.registry_evictions, 5u);
  EXPECT_EQ(decoded.faults_injected, 6u);
}

// --- meta_dynamic worker-failure recovery ------------------------------------------

/// Producer task yielding FaultItem 0..count-1 then null.
class FaultProducerTask final : public core::Task {
 public:
  FaultProducerTask() = default;
  explicit FaultProducerTask(std::int64_t count) : remaining_(count) {}

  std::shared_ptr<core::Task> run() override;

  std::string type_name() const override { return "test.fault.Producer"; }
  void write_fields(serial::ObjectOutputStream& out) const override {
    out.write_i64(next_);
    out.write_i64(remaining_);
  }
  static std::shared_ptr<FaultProducerTask> read_object(
      serial::ObjectInputStream& in) {
    auto task = std::make_shared<FaultProducerTask>();
    task->next_ = in.read_i64();
    task->remaining_ = in.read_i64();
    return task;
  }

 private:
  std::int64_t next_ = 0;
  std::int64_t remaining_ = 0;
};

class FaultItem final : public core::Task {
 public:
  FaultItem() = default;
  explicit FaultItem(std::int64_t id) : id_(id) {}

  std::shared_ptr<core::Task> run() override;

  std::string type_name() const override { return "test.fault.Item"; }
  void write_fields(serial::ObjectOutputStream& out) const override {
    out.write_i64(id_);
  }
  static std::shared_ptr<FaultItem> read_object(serial::ObjectInputStream& in) {
    auto task = std::make_shared<FaultItem>();
    task->id_ = in.read_i64();
    return task;
  }

 private:
  std::int64_t id_ = 0;
};

class FaultResult final : public core::Task {
 public:
  FaultResult() = default;
  FaultResult(std::int64_t id, std::int64_t value) : id_(id), value_(value) {}
  std::int64_t id() const { return id_; }
  std::int64_t value() const { return value_; }

  std::shared_ptr<core::Task> run() override { return nullptr; }
  std::string type_name() const override { return "test.fault.Result"; }
  void write_fields(serial::ObjectOutputStream& out) const override {
    out.write_i64(id_);
    out.write_i64(value_);
  }
  static std::shared_ptr<FaultResult> read_object(
      serial::ObjectInputStream& in) {
    auto task = std::make_shared<FaultResult>();
    task->id_ = in.read_i64();
    task->value_ = in.read_i64();
    return task;
  }

 private:
  std::int64_t id_ = 0;
  std::int64_t value_ = 0;
};

std::shared_ptr<core::Task> FaultProducerTask::run() {
  if (remaining_ == 0) return nullptr;
  --remaining_;
  return std::make_shared<FaultItem>(next_++);
}

std::shared_ptr<core::Task> FaultItem::run() {
  // Odd tasks are slow so completions interleave across workers.
  if (id_ % 2 == 1) std::this_thread::sleep_for(std::chrono::milliseconds{1});
  return std::make_shared<FaultResult>(id_, id_ * 7 + 1);
}

[[maybe_unused]] const bool kFaultTasksRegistered =
    serial::register_type<SlowTask>("test.fault.SlowTask") &&
    serial::register_type<FaultProducerTask>("test.fault.Producer") &&
    serial::register_type<FaultItem>("test.fault.Item") &&
    serial::register_type<FaultResult>("test.fault.Result");

/// A worker that dies mid-task: after completing `crash_after` tasks it
/// reads the next one and then throws -- leaving that task dispatched but
/// unacknowledged, exactly the state the ledger must recover from.
class FlakyWorker final : public core::IterativeProcess {
 public:
  FlakyWorker(std::shared_ptr<core::ChannelInputStream> in,
              std::shared_ptr<core::ChannelOutputStream> out,
              std::int64_t crash_after)
      : crash_after_(crash_after) {
    track_input(std::move(in));
    track_output(std::move(out));
  }

  std::string type_name() const override { return "test.fault.FlakyWorker"; }
  void write_fields(serial::ObjectOutputStream&) const override {
    throw SerializationError{"FlakyWorker is test-local"};
  }

 protected:
  void step() override {
    io::DataInputStream in{input(0)};
    auto task = par::read_task(in);
    if (++seen_ > crash_after_) {
      throw std::runtime_error{"injected worker crash"};
    }
    auto result = task->run();
    io::DataOutputStream out{output(0)};
    par::write_task(out, result);
  }

 private:
  std::int64_t crash_after_ = 0;
  std::int64_t seen_ = 0;
};

/// Runs producer -> meta_dynamic(workers, factory) -> consumer and
/// returns the observed (id, value) pairs in consumer order.
std::vector<std::pair<std::int64_t, std::int64_t>> run_dynamic(
    std::int64_t tasks, std::size_t workers, const par::WorkerFactory& factory) {
  std::mutex mutex;
  std::vector<std::pair<std::int64_t, std::int64_t>> seen;
  auto observer = [&](const std::shared_ptr<core::Task>& task) {
    auto result = std::dynamic_pointer_cast<FaultResult>(task);
    ASSERT_TRUE(result);
    std::scoped_lock lock{mutex};
    seen.emplace_back(result->id(), result->value());
  };
  auto graph = par::pipeline(
      std::make_shared<FaultProducerTask>(tasks), observer,
      [&](auto in, auto out) {
        return par::meta_dynamic(std::move(in), std::move(out), workers,
                                 factory);
      });
  graph->run();
  return seen;
}

TEST(Fault, MetaDynamicRecoversFromWorkerDeath) {
  constexpr std::int64_t kTasks = 64;
  constexpr std::size_t kWorkers = 4;

  // Reference: the failure-free run.
  const auto reference = run_dynamic(kTasks, kWorkers, {});
  ASSERT_EQ(reference.size(), static_cast<std::size_t>(kTasks));

  // Chaos run: worker 1 dies mid-task after completing three tasks.
  const std::uint64_t reissued_before =
      fault::stats().tasks_reissued.load(std::memory_order_relaxed);
  const std::uint64_t lost_before =
      fault::stats().workers_lost.load(std::memory_order_relaxed);
  const auto recovered = run_dynamic(
      kTasks, kWorkers,
      [](std::size_t index, std::shared_ptr<core::ChannelInputStream> in,
         std::shared_ptr<core::ChannelOutputStream> out)
          -> std::shared_ptr<core::Process> {
        if (index == 1) {
          return std::make_shared<FlakyWorker>(std::move(in), std::move(out),
                                               3);
        }
        return std::make_shared<par::Worker>(std::move(in), std::move(out));
      });

  // Byte-identical output: same results, same order, nothing duplicated
  // or dropped -- the acceptance criterion for ledger recovery.
  EXPECT_EQ(recovered, reference);
  EXPECT_GE(fault::stats().tasks_reissued.load(std::memory_order_relaxed),
            reissued_before + 1);
  EXPECT_GE(fault::stats().workers_lost.load(std::memory_order_relaxed),
            lost_before + 1);
}

TEST(Fault, MetaDynamicRecoveredRunsAreRepeatable) {
  // Determinism: two chaos runs with the same crash point produce the
  // same output (which also equals the failure-free order, checked above).
  const par::WorkerFactory flaky =
      [](std::size_t index, std::shared_ptr<core::ChannelInputStream> in,
         std::shared_ptr<core::ChannelOutputStream> out)
      -> std::shared_ptr<core::Process> {
    if (index == 2) {
      return std::make_shared<FlakyWorker>(std::move(in), std::move(out), 2);
    }
    return std::make_shared<par::Worker>(std::move(in), std::move(out));
  };
  const auto first = run_dynamic(48, 3, flaky);
  const auto second = run_dynamic(48, 3, flaky);
  ASSERT_EQ(first.size(), 48u);
  EXPECT_EQ(first, second);
}

TEST(Fault, MetaDynamicSingleWorkerDeathSurfacesWorkerLost) {
  // With one worker there are no survivors to re-issue to: the schema
  // must fail loudly (WorkerLost) instead of deadlocking -- the n=1
  // regression this PR fixes.
  std::mutex mutex;
  std::vector<std::int64_t> seen;
  auto observer = [&](const std::shared_ptr<core::Task>& task) {
    auto result = std::dynamic_pointer_cast<FaultResult>(task);
    std::scoped_lock lock{mutex};
    if (result) seen.push_back(result->id());
  };
  auto graph = par::pipeline(
      std::make_shared<FaultProducerTask>(16), observer,
      [](auto in, auto out) {
        return par::meta_dynamic(
            std::move(in), std::move(out), 1,
            [](std::size_t, std::shared_ptr<core::ChannelInputStream> wi,
               std::shared_ptr<core::ChannelOutputStream> wo)
                -> std::shared_ptr<core::Process> {
              return std::make_shared<FlakyWorker>(std::move(wi),
                                                   std::move(wo), 3);
            });
      });
  EXPECT_THROW(graph->run(), WorkerLost);
  // The completed prefix was still delivered in order.
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<std::int64_t>(i));
  }
}

}  // namespace
}  // namespace dpn
