#include <gtest/gtest.h>

#include <thread>

#include "core/network.hpp"
#include "dist/node.hpp"
#include "dist/remote_streams.hpp"
#include "dist/ship.hpp"
#include "io/memory.hpp"
#include "image/codec.hpp"
#include "net/frames.hpp"
#include "par/generic.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "rmi/compute_server.hpp"
#include "rmi/registry.hpp"
#include "serial/serial.hpp"

/// Failure injection: sockets killed mid-stream, corrupt and truncated
/// wire data, dead infrastructure, double closes, hostile inputs.  The
/// invariant under test everywhere: failures surface as IoError-family
/// exceptions (which the runtime converts into clean process stops and
/// cascading termination) -- never as crashes, hangs, or silent
/// corruption.
namespace dpn {
namespace {

using core::Channel;
using processes::Collect;
using processes::CollectSink;
using processes::Identity;
using processes::Sequence;

// --- Socket-level failures -------------------------------------------------------

TEST(Failure, SocketKilledMidStreamStopsConsumerCleanly) {
  // A producer's node dies (socket hard-closed without FIN); the consumer
  // sees end-of-stream after the delivered prefix, not a crash.
  auto node_a = dist::NodeContext::create();
  auto node_b = dist::NodeContext::create();

  auto ch = std::make_shared<Channel>(256);
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto source = std::make_shared<Sequence>(0, ch->output());  // unbounded
  auto drain = std::make_shared<Collect>(ch->input(), sink);

  const ByteVector shipment = dist::ship_process(node_a, source);
  auto remote = std::dynamic_pointer_cast<core::IterativeProcess>(
      dist::receive_process(node_b, {shipment.data(), shipment.size()}));
  ASSERT_TRUE(remote);

  std::jthread host_b{[&] { remote->run(); }};
  std::jthread drainer{[&] { drain->run(); }};
  while (sink->size() < 20) std::this_thread::yield();

  // Kill the producer the hard way: park it, then drop every reference
  // (its socket closes with the object graph; no FIN frame is sent).
  remote->request_pause();
  ASSERT_TRUE(remote->await_pause());
  remote->abandon();
  host_b.join();
  remote.reset();

  drainer.join();  // EOF after the prefix; Collect stops gracefully
  EXPECT_GE(sink->size(), 20u);
  const auto values = sink->values();
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], static_cast<std::int64_t>(i));  // prefix intact
  }
}

TEST(Failure, ConsumerNodeVanishesKillsProducer) {
  // The inverse: the consumer is dropped; the producer's next write gets
  // ChannelClosed and the graph terminates instead of spinning.
  auto node_a = dist::NodeContext::create();
  auto node_b = dist::NodeContext::create();

  auto ch = std::make_shared<Channel>(256);
  auto drain = std::make_shared<processes::Print>(ch->input());
  const ByteVector shipment = dist::ship_process(node_a, drain);
  auto remote = dist::receive_process(node_b, {shipment.data(),
                                               shipment.size()});

  // Do not run the remote consumer at all; just destroy it.
  remote.reset();

  auto source = std::make_shared<Sequence>(0, ch->output());  // unbounded
  source->run();  // must terminate via ChannelClosed, not hang
  SUCCEED();
}

// --- Corrupt wire data ---------------------------------------------------------

TEST(Failure, SerializerNeverCrashesOnTruncation) {
  // Property: every prefix of a valid object stream either decodes to the
  // object (full length) or throws IoError -- never UB, never success.
  auto point_bytes = [] {
    auto sink = std::make_shared<io::MemoryOutputStream>();
    serial::ObjectOutputStream out{sink};
    out.write_object(std::make_shared<par::StopSignal>());
    return sink->take();
  }();
  for (std::size_t cut = 0; cut < point_bytes.size(); ++cut) {
    ByteVector prefix{point_bytes.begin(),
                      point_bytes.begin() + static_cast<std::ptrdiff_t>(cut)};
    EXPECT_THROW(serial::from_bytes({prefix.data(), prefix.size()}), IoError)
        << "cut at " << cut;
  }
  EXPECT_NO_THROW(
      serial::from_bytes({point_bytes.data(), point_bytes.size()}));
}

TEST(Failure, SerializerSurvivesBitFlips) {
  auto bytes = [] {
    auto sink = std::make_shared<io::MemoryOutputStream>();
    serial::ObjectOutputStream out{sink};
    out.write_object(std::make_shared<par::StopSignal>());
    return sink->take();
  }();
  // Flip every bit position once; decoding must either throw IoError or
  // produce some object -- and never crash.
  for (std::size_t i = 0; i < bytes.size() * 8; ++i) {
    ByteVector mutated = bytes;
    mutated[i / 8] ^= static_cast<std::uint8_t>(1u << (i % 8));
    try {
      auto object = serial::from_bytes({mutated.data(), mutated.size()});
      (void)object;
    } catch (const IoError&) {
    } catch (const std::logic_error&) {
      // UsageError for pathological lengths is acceptable too.
    }
  }
  SUCCEED();
}

TEST(Failure, FrameReaderRejectsGarbage) {
  Xoshiro256 rng{404};
  for (int round = 0; round < 100; ++round) {
    ByteVector junk(1 + rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    net::FrameReader reader{std::make_shared<io::MemoryInputStream>(junk)};
    try {
      for (;;) {
        net::Frame frame = reader.read_frame();
        if (frame.type == net::FrameType::kFin) break;
      }
    } catch (const IoError&) {
      // Truncation / oversized-frame rejection: fine.
    }
  }
  SUCCEED();
}

TEST(Failure, ComputeServerSurvivesGarbageConnection) {
  rmi::ComputeServer server{"garbage-target"};
  {
    net::Socket socket = net::Socket::connect("127.0.0.1", server.port());
    const ByteVector junk{0xff, 0x00, 0x41, 0x42, 0x43};
    socket.write_all({junk.data(), junk.size()});
  }  // closed abruptly
  {
    // An empty connection (connect + immediate close).
    net::Socket socket = net::Socket::connect("127.0.0.1", server.port());
  }
  // The server still works afterwards.
  rmi::ServerHandle handle{rmi::Endpoint{"127.0.0.1", server.port()},
                           nullptr};
  EXPECT_NO_THROW(handle.ping());
  server.stop();
}

TEST(Failure, RendezvousSurvivesGarbageConnection) {
  auto node = dist::NodeContext::create();
  {
    net::Socket socket =
        net::Socket::connect("127.0.0.1", node->rendezvous().port());
    const ByteVector junk{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
    socket.write_all({junk.data(), junk.size()});
  }
  // A legitimate rendezvous still completes afterwards.
  auto promise = node->rendezvous().expect(55);
  std::jthread dialer{[&] {
    dist::RendezvousService::dial("127.0.0.1", node->rendezvous().port(), 55,
                                  node->address());
  }};
  EXPECT_NO_THROW(promise->wait());
}

// --- Dead infrastructure ----------------------------------------------------------

TEST(Failure, RegistryGoneThrowsCleanly) {
  std::uint16_t dead_port = 0;
  {
    rmi::Registry registry{0};
    dead_port = registry.port();
  }  // registry stopped
  rmi::RegistryClient client{"127.0.0.1", dead_port};
  EXPECT_THROW(client.lookup("anything"), NetError);
  EXPECT_THROW(
      rmi::ServerHandle::lookup("127.0.0.1", dead_port, "x", nullptr),
      NetError);
}

TEST(Failure, ServerStopsWhileHostedGraphRuns) {
  // stop() must wait for the hosted graph to finish, not strand it.
  auto client_node = dist::NodeContext::create();
  auto server = std::make_unique<rmi::ComputeServer>("stopper");

  auto ch1 = std::make_shared<Channel>(256);
  auto ch2 = std::make_shared<Channel>(256);
  auto middle = std::make_shared<Identity>(ch1->input(), ch2->output());
  rmi::ServerHandle handle{rmi::Endpoint{"127.0.0.1", server->port()},
                           client_node};
  handle.submit(middle);

  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto source = std::make_shared<Sequence>(0, ch1->output(), 50);
  auto drain = std::make_shared<Collect>(ch2->input(), sink);
  std::jthread src{[&] { source->run(); }};
  drain->run();
  ASSERT_EQ(sink->size(), 50u);

  server->stop();  // graph has terminated; stop() returns promptly
  server.reset();
  SUCCEED();
}

// --- API misuse and double operations ----------------------------------------------

TEST(Failure, DoubleCloseIsIdempotent) {
  Channel channel{64};
  EXPECT_NO_THROW(channel.output()->close());
  EXPECT_NO_THROW(channel.output()->close());
  EXPECT_NO_THROW(channel.input()->close());
  EXPECT_NO_THROW(channel.input()->close());
}

TEST(Failure, WriteAfterOwnCloseThrows) {
  Channel channel{64};
  channel.output()->close();
  io::DataOutputStream out{channel.output()};
  EXPECT_THROW(out.write_i64(1), IoError);
}

TEST(Failure, ReadAfterOwnCloseThrows) {
  Channel channel{64};
  channel.input()->close();
  io::DataInputStream in{channel.input()};
  EXPECT_THROW(in.read_i64(), IoError);
}

TEST(Failure, NetworkAbortUnblocksEverything) {
  core::Network network;
  auto ch = network.make_channel({.capacity = 64});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.add(std::make_shared<Sequence>(0, ch->output()));  // unbounded
  network.add(std::make_shared<Collect>(ch->input(), sink));
  network.start();
  while (sink->size() < 10) std::this_thread::yield();
  network.abort();
  network.join();  // both processes stop on Interrupted
  SUCCEED();
}

TEST(Failure, ImageDecoderRandomFuzz) {
  // decompress_image on random bytes: throws IoError or succeeds, never
  // crashes (success is astronomically unlikely but permitted).
  Xoshiro256 rng{777};
  for (int round = 0; round < 200; ++round) {
    ByteVector junk(rng.below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    try {
      (void)image::decompress_image({junk.data(), junk.size()});
    } catch (const IoError&) {
    } catch (const std::logic_error&) {
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace dpn
