#include <gtest/gtest.h>

#include <thread>

#include "core/channel.hpp"
#include "dist/node.hpp"
#include "dist/ship.hpp"
#include "io/data.hpp"
#include "support/rng.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"

/// Credit-based flow control on remote channels: Section 3.5's bounded
/// buffers, across machines.  A remote producer gets a finite byte window
/// and blocks when it is exhausted; the consumer returns window as it
/// consumes; the deadlock machinery can grant bonus window.
namespace dpn::dist {
namespace {

using core::Channel;
using processes::Collect;
using processes::CollectSink;
using processes::Identity;
using processes::Sequence;

/// Ships ch's consumer (an Identity into a local out-channel) to node_b
/// and returns the remote process; the producer endpoint stays local.
struct CutChannel {
  std::shared_ptr<Channel> in;
  std::shared_ptr<Channel> out;
  std::shared_ptr<core::Process> remote;
};

CutChannel make_cut(const std::shared_ptr<NodeContext>& node_a,
                    const std::shared_ptr<NodeContext>& node_b,
                    std::size_t out_capacity = 1 << 16) {
  CutChannel cut;
  cut.in = std::make_shared<Channel>(1 << 16, "cut.in");
  cut.out = std::make_shared<Channel>(out_capacity, "cut.out");
  auto mover = std::make_shared<Identity>(cut.in->input(),
                                          cut.out->output());
  const ByteVector shipment = ship_process(node_a, mover);
  cut.remote = receive_process(node_b, {shipment.data(), shipment.size()});
  return cut;
}

TEST(FlowControl, WriterBlocksOnExhaustedWindow) {
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();
  node_a->set_remote_window(64);    // producer A->B: 8 elements
  node_b->set_remote_window(1024);  // Identity B->A: 128 elements

  // Both hops of the cut are remote; nobody reads cut.out, so the
  // Identity wedges once its B->A window is spent, stops consuming, and
  // the producer's credits dry up a window later.
  CutChannel cut = make_cut(node_a, node_b);
  std::jthread host{[&] { cut.remote->run(); }};

  std::atomic<long> written{0};
  std::jthread producer{[&] {
    io::DataOutputStream out{cut.in->output()};
    try {
      for (long i = 0; i < 100000; ++i) {
        out.write_i64(i);
        written.fetch_add(1);
      }
    } catch (const IoError&) {
    }
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds{50});
  const long after_stall = written.load();
  EXPECT_LT(after_stall, 100000);  // did not run away
  std::this_thread::sleep_for(std::chrono::milliseconds{20});
  EXPECT_EQ(written.load(), after_stall);  // genuinely wedged
  EXPECT_GT(node_a->traffic()->blocked_remote_writers.load(), 0);

  // Unblock for teardown: drain the far side.
  std::jthread drain{[&] {
    io::DataInputStream in{cut.out->input()};
    try {
      for (;;) (void)in.read_i64();
    } catch (const IoError&) {
    }
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds{30});
  cut.in->output()->close();
  cut.out->input()->close();
}

TEST(FlowControl, ConsumptionReturnsWindow) {
  // With an active consumer the stream flows to completion even though
  // the total volume is many times the window.
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();
  node_a->set_remote_window(64);

  CutChannel cut = make_cut(node_a, node_b);
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto source = std::make_shared<Sequence>(0, cut.in->output(), 5000);
  auto drain = std::make_shared<Collect>(cut.out->input(), sink);

  std::jthread host{[&] { cut.remote->run(); }};
  std::jthread src{[&] { source->run(); }};
  drain->run();

  ASSERT_EQ(sink->size(), 5000u);  // 40 KB through a 64-byte window
  for (int i = 0; i < 5000; ++i) EXPECT_EQ(sink->values()[i], i);
}

TEST(FlowControl, SingleByteWindowStillCorrect) {
  // Pathological window: every element needs several credit round trips;
  // the byte stream must still arrive exactly.
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();
  node_a->set_remote_window(1);

  CutChannel cut = make_cut(node_a, node_b);
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto source = std::make_shared<Sequence>(100, cut.in->output(), 64);
  auto drain = std::make_shared<Collect>(cut.out->input(), sink);

  std::jthread host{[&] { cut.remote->run(); }};
  std::jthread src{[&] { source->run(); }};
  drain->run();

  ASSERT_EQ(sink->size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(sink->values()[i], 100 + i);
}

TEST(FlowControl, BonusCreditsUnblockWriter) {
  // The coordinator's remote-grow: a fleet-wide stall (producer and the
  // forwarding Identity both out of window, nobody consuming) is released
  // purely by broadcasting bonus credits -- the distributed equivalent of
  // growing full channels.
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();
  node_a->set_remote_window(16);  // producer A->B: 2 elements
  node_b->set_remote_window(16);  // Identity B->A: 2 elements; bonus size

  CutChannel cut = make_cut(node_a, node_b);
  std::jthread host{[&] { cut.remote->run(); }};

  std::atomic<long> written{0};
  std::jthread producer{[&] {
    io::DataOutputStream out{cut.in->output()};
    try {
      for (long i = 0; i < 8; ++i) {
        out.write_i64(i);
        written.fetch_add(1);
      }
    } catch (const IoError&) {
    }
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds{30});
  const long stalled_at = written.load();
  EXPECT_LT(stalled_at, 8);
  std::this_thread::sleep_for(std::chrono::milliseconds{10});
  EXPECT_EQ(written.load(), stalled_at);  // wedged until credits arrive

  // Broadcast grants (what the coordinator's kGrowRemote does) until the
  // stream is through.
  for (int round = 0; round < 50 && written.load() < 8; ++round) {
    node_a->grant_remote_credits();
    node_b->grant_remote_credits();
    std::this_thread::sleep_for(std::chrono::milliseconds{2});
  }
  producer.join();
  EXPECT_EQ(written.load(), 8);

  cut.in->output()->close();
  io::DataInputStream in{cut.out->input()};
  for (long i = 0; i < 8; ++i) EXPECT_EQ(in.read_i64(), i);
}

TEST(FlowControl, BufferedChannelSurvivesLiveCut) {
  // A channel whose producer writes through a coalescing buffer is cut
  // mid-stream: some elements sit in the pipe, some still in the write
  // buffer.  The migration flush points must make the shipped consumer's
  // byte history identical to an unbuffered channel's.
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();

  core::ChannelOptions options;
  options.capacity = 1 << 16;
  options.label = "buffered.in";
  options.write_buffer = 256;  // 32 elements per drain
  auto in = std::make_shared<Channel>(options);
  auto out = std::make_shared<Channel>(std::size_t{1} << 16, "plain.out");

  io::DataOutputStream produce{in->output()};
  for (long i = 0; i < 100; ++i) produce.write_i64(i);
  // 800 bytes written: 768 crossed into the pipe, 32 are still coalesced.
  EXPECT_LT(in->pipe()->size(), 800u);

  auto mover = std::make_shared<Identity>(in->input(), out->output());
  const ByteVector shipment = ship_process(node_a, mover);
  auto remote = receive_process(node_b, {shipment.data(), shipment.size()});
  std::jthread host{[&] { remote->run(); }};

  for (long i = 100; i < 200; ++i) produce.write_i64(i);
  in->output()->close();  // flush-on-close delivers the post-cut tail

  io::DataInputStream consume{out->input()};
  for (long i = 0; i < 200; ++i) ASSERT_EQ(consume.read_i64(), i);
}

TEST(FlowControl, BufferedProducerFlushedWhenConsumerStays) {
  // The opposite cut: the *producer* endpoint of a buffered channel ships
  // away while its consumer stays.  The coalesced bytes that never crossed
  // the pipe must be flushed into it before the write side closes, and the
  // reconstructed remote endpoint must keep the buffering profile.
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();

  auto in = std::make_shared<Channel>(std::size_t{1} << 16, "cut.in");
  core::ChannelOptions options;
  options.capacity = 1 << 16;
  options.label = "cut.out";
  options.write_buffer = 4096;
  auto out = std::make_shared<Channel>(options);

  io::DataOutputStream direct{out->output()};
  for (long i = 1000; i < 1005; ++i) direct.write_i64(i);
  EXPECT_EQ(out->pipe()->size(), 0u);  // all 40 bytes still coalesced

  auto mover = std::make_shared<Identity>(in->input(), out->output());
  const ByteVector shipment = ship_process(node_a, mover);
  auto remote = receive_process(node_b, {shipment.data(), shipment.size()});
  EXPECT_EQ(out->pipe()->size(), 40u);  // the cut flushed them
  std::jthread host{[&] { remote->run(); }};

  std::jthread feeder{[&] {
    io::DataOutputStream feed{in->output()};
    for (long i = 1005; i < 1010; ++i) feed.write_i64(i);
    in->output()->close();
  }};

  io::DataInputStream consume{out->input()};
  for (long i = 1000; i < 1010; ++i) ASSERT_EQ(consume.read_i64(), i);
}

TEST(FlowControl, LargeSingleWriteChunksThroughWindow) {
  // One write far larger than the window must be split into window-sized
  // chunks and arrive byte-exact.
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();
  node_a->set_remote_window(100);

  CutChannel cut = make_cut(node_a, node_b);
  std::jthread host{[&] { cut.remote->run(); }};

  dpn::Xoshiro256 rng{1234};
  ByteVector blob(10000);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next());

  std::jthread producer{[&] {
    io::DataOutputStream out{cut.in->output()};
    out.write_bytes({blob.data(), blob.size()});
    cut.in->output()->close();
  }};

  io::DataInputStream in{cut.out->input()};
  const ByteVector received = in.read_bytes();
  EXPECT_EQ(received, blob);
}

TEST(FlowControl, DefaultWindowInvisibleToNormalGraphs) {
  // Sanity: with the default window, a multi-megabyte transfer flows at
  // full speed with no interventions.
  auto node_a = NodeContext::create();
  auto node_b = NodeContext::create();

  CutChannel cut = make_cut(node_a, node_b);
  std::jthread host{[&] { cut.remote->run(); }};

  constexpr std::size_t kChunk = 64 * 1024;
  constexpr int kChunks = 32;  // 2 MiB total
  std::jthread producer{[&] {
    io::DataOutputStream out{cut.in->output()};
    ByteVector chunk(kChunk, 0x5a);
    for (int i = 0; i < kChunks; ++i) {
      out.write_bytes({chunk.data(), chunk.size()});
    }
    cut.in->output()->close();
  }};

  io::DataInputStream in{cut.out->input()};
  std::size_t total = 0;
  for (int i = 0; i < kChunks; ++i) total += in.read_bytes().size();
  EXPECT_EQ(total, kChunk * kChunks);
}

}  // namespace
}  // namespace dpn::dist
