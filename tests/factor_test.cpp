#include <gtest/gtest.h>

#include <mutex>

#include "factor/factor.hpp"
#include "par/schema.hpp"

namespace dpn::factor {
namespace {

TEST(FactorProblem, GeneratedInstanceIsConsistent) {
  const auto problem = FactorProblem::generate(/*seed=*/1, /*prime_bits=*/96,
                                               /*total_tasks=*/8);
  const BigInt q = problem.p + BigInt{static_cast<std::int64_t>(problem.d_true)};
  EXPECT_EQ(problem.p * q, problem.n);
  EXPECT_EQ(problem.d_true % 2, 0u);
  // The true difference lies inside the final batch of 32 even values.
  EXPECT_GE(problem.d_true, 2u * 32u * 7u);
  EXPECT_LT(problem.d_true, 2u * 32u * 8u);
}

TEST(FactorProblem, DeterministicPerSeed) {
  const auto a = FactorProblem::generate(7, 64, 4);
  const auto b = FactorProblem::generate(7, 64, 4);
  EXPECT_EQ(a.n, b.n);
  const auto c = FactorProblem::generate(8, 64, 4);
  EXPECT_NE(a.n, c.n);
}

TEST(ScanDifferences, FindsFactorInItsBatch) {
  const auto problem = FactorProblem::generate(2, 80, 6);
  // The batch containing d_true finds it...
  const std::uint64_t batch_start = (problem.d_true / 64) * 64;
  const auto found = scan_differences(problem.n, batch_start, 32);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, problem.p);
  // ... and the batch before it does not.
  if (batch_start >= 64) {
    EXPECT_FALSE(scan_differences(problem.n, batch_start - 64, 32));
  }
}

TEST(ScanDifferences, HandlesZeroDifference) {
  // N = P^2: found at D = 0.
  Xoshiro256 rng{3};
  const BigInt p = BigInt::random_prime(rng, 64);
  const auto found = scan_differences(p * p, 0, 1);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, p);
}

TEST(ScanDifferences, NoFalsePositives) {
  // A product of two primes of very different sizes has no small-D
  // factorization.
  Xoshiro256 rng{4};
  const BigInt p = BigInt::random_prime(rng, 40);
  const BigInt q = BigInt::random_prime(rng, 80);
  EXPECT_FALSE(scan_differences(p * q, 0, 256).has_value());
}

TEST(Tasks, ProducerYieldsExactlyTotalTasks) {
  const auto problem = FactorProblem::generate(5, 64, 5);
  FactorProducerTask producer{problem.n, 5};
  std::uint64_t expected_d = 0;
  for (int i = 0; i < 5; ++i) {
    auto task =
        std::dynamic_pointer_cast<FactorWorkerTask>(producer.run());
    ASSERT_TRUE(task);
    EXPECT_EQ(task->d_start(), expected_d);
    EXPECT_EQ(task->count(), 32u);
    expected_d += 64;
  }
  EXPECT_EQ(producer.run(), nullptr);
}

TEST(Tasks, WorkerTaskSerializationRoundTrip) {
  const auto problem = FactorProblem::generate(6, 128, 3);
  auto task = std::make_shared<FactorWorkerTask>(problem.n, 128, 32);
  const ByteVector bytes = serial::to_bytes(task);
  auto restored =
      serial::from_bytes_as<FactorWorkerTask>({bytes.data(), bytes.size()});
  EXPECT_EQ(restored->d_start(), 128u);
  EXPECT_EQ(restored->count(), 32u);
}

TEST(Sequential, FindsTheFactor) {
  const auto problem = FactorProblem::generate(9, 96, 6);
  const auto found = run_sequential(problem.n, 6);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, problem.p);
}

TEST(Sequential, MissesWhenSearchTooShort) {
  const auto problem = FactorProblem::generate(10, 96, 6);
  EXPECT_FALSE(run_sequential(problem.n, 5).has_value());  // one batch short
}

class FactorNetwork : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FactorNetwork, ParallelSearchFindsFactor) {
  // The full Section 5.2 experiment in miniature: producer/worker/consumer
  // over MetaDynamic; the consumer observer records the found factor.
  const std::size_t workers = GetParam();
  const auto problem = FactorProblem::generate(11, 96, 12);

  std::mutex mutex;
  std::optional<BigInt> found;
  std::size_t results = 0;
  auto observer = [&](const std::shared_ptr<core::Task>& task) {
    auto result = std::dynamic_pointer_cast<FactorResultTask>(task);
    ASSERT_TRUE(result);
    std::scoped_lock lock{mutex};
    ++results;
    if (result->found) found = result->p;
  };
  auto graph = par::pipeline(
      std::make_shared<FactorProducerTask>(problem.n, 12), observer,
      [&](auto in, auto out) {
        return par::meta_dynamic(std::move(in), std::move(out), workers);
      });
  graph->run();

  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, problem.p);
  EXPECT_EQ(results, 12u);
}

TEST_P(FactorNetwork, StaticAndDynamicAgree) {
  const std::size_t workers = GetParam();
  const auto problem = FactorProblem::generate(13, 80, 8);

  auto run_with = [&](bool dynamic) {
    std::mutex mutex;
    std::vector<std::uint64_t> batch_order;
    std::optional<BigInt> found;
    auto observer = [&](const std::shared_ptr<core::Task>& task) {
      auto result = std::dynamic_pointer_cast<FactorResultTask>(task);
      std::scoped_lock lock{mutex};
      batch_order.push_back(result->d_start);
      if (result->found) found = result->p;
    };
    auto graph = par::pipeline(
        std::make_shared<FactorProducerTask>(problem.n, 8), observer,
        [&](auto in, auto out) {
          return dynamic
                     ? par::meta_dynamic(std::move(in), std::move(out), workers)
                     : par::meta_static(std::move(in), std::move(out), workers);
        });
    graph->run();
    return std::pair{batch_order, found};
  };

  const auto [static_order, static_found] = run_with(false);
  const auto [dynamic_order, dynamic_found] = run_with(true);
  // Identical results in identical order (Section 5's equivalence claim).
  EXPECT_EQ(static_order, dynamic_order);
  ASSERT_TRUE(static_found.has_value());
  ASSERT_TRUE(dynamic_found.has_value());
  EXPECT_EQ(*static_found, *dynamic_found);
  EXPECT_EQ(*static_found, problem.p);
}

INSTANTIATE_TEST_SUITE_P(Workers, FactorNetwork, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace dpn::factor
