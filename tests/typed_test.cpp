#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "core/network.hpp"
#include "core/typed.hpp"
#include "dist/ship.hpp"
#include "io/data.hpp"
#include "io/memory.hpp"
#include "io/pipe.hpp"
#include "obs/snapshot.hpp"
#include "processes/basic.hpp"
#include "sched/scheduler.hpp"
#include "serial/serial.hpp"

/// The typed zero-copy fast path (io/typed_ring.hpp, core/typed.hpp):
/// contract conformance (blocking, bounded, ordered, cascading close),
/// demotion to the byte plane at ship cut points, the poisoned-ring audit
/// case, obs integration (counters, v6 snapshot suffix), and the
/// determinacy matrix run over both data planes and both schedulers.
namespace dpn {
namespace {

using core::Channel;
using core::ChannelOptions;
using core::Codec;
using core::make_typed_channel;
using core::Network;
using core::TypedReader;
using core::TypedWriter;
using processes::CollectSink;

// --- ring contract ---------------------------------------------------------

TEST(Typed, FastPathRoundTripAndCounters) {
  auto ch = make_typed_channel<std::int64_t>({.capacity = 4096});
  TypedWriter<std::int64_t> writer{ch->output()};
  TypedReader<std::int64_t> reader{ch->input()};
  ASSERT_TRUE(writer.fast_path());
  ASSERT_TRUE(reader.fast_path());

  for (std::int64_t i = 0; i < 100; ++i) {
    writer.put(i * 3);
    const auto v = reader.get();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i * 3);
  }

  // The ring bypasses the byte endpoints, yet the channel's traffic
  // counters must match what the byte path would have recorded: one token
  // and Codec::kWireSize bytes per value, both directions.
  const auto& m = *ch->state()->metrics;
  EXPECT_EQ(m.tokens_written.load(), 100u);
  EXPECT_EQ(m.bytes_written.load(), 800u);
  EXPECT_EQ(m.tokens_read.load(), 100u);
  EXPECT_EQ(m.bytes_read.load(), 800u);
}

TEST(Typed, DoubleCodecRoundTrip) {
  auto ch = make_typed_channel<double>({.capacity = 1024});
  TypedWriter<double> writer{ch->output()};
  TypedReader<double> reader{ch->input()};
  const double values[] = {0.0, -1.5, 3.14159, 1e300, -0.0};
  for (const double v : values) {
    writer.put(v);
    const auto got = reader.get();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);  // bit-exact through double_to_bits
  }
}

TEST(Typed, BoundedWriterBlocksUntilDrained) {
  // 64 bytes = 8 slots (rounded to 16 by the pow2 ring): the writer must
  // park well before 200 values without a consumer.
  auto ch = make_typed_channel<std::int64_t>({.capacity = 64});
  std::atomic<int> pushed{0};
  std::jthread producer{[&] {
    TypedWriter<std::int64_t> writer{ch->output()};
    for (std::int64_t i = 0; i < 200; ++i) {
      writer.put(i);
      pushed.fetch_add(1);
    }
    writer.close();
  }};
  while (ch->state()->typed->blocked_writers() == 0) {
    std::this_thread::yield();
  }
  const int parked_at = pushed.load();
  EXPECT_LT(parked_at, 200);
  std::this_thread::sleep_for(std::chrono::milliseconds{10});
  EXPECT_EQ(pushed.load(), parked_at);  // genuinely parked, not spinning on

  TypedReader<std::int64_t> reader{ch->input()};
  for (std::int64_t i = 0; i < 200; ++i) {
    const auto v = reader.get();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);  // FIFO across the park/wake boundary
  }
  EXPECT_FALSE(reader.get().has_value());  // close_write drained to EOF
}

TEST(Typed, CloseReadFailsProducerWithChannelClosed) {
  auto ch = make_typed_channel<std::int64_t>({.capacity = 256});
  TypedWriter<std::int64_t> writer{ch->output()};
  writer.put(1);
  ch->input()->close();
  EXPECT_THROW(writer.put(2), ChannelClosed);
}

TEST(Typed, CloseReadWakesParkedProducer) {
  auto ch = make_typed_channel<std::int64_t>({.capacity = 64});
  std::atomic<bool> threw{false};
  std::jthread producer{[&] {
    TypedWriter<std::int64_t> writer{ch->output()};
    try {
      for (std::int64_t i = 0; i < 1000; ++i) writer.put(i);
    } catch (const ChannelClosed&) {
      threw.store(true);
    }
  }};
  while (ch->state()->typed->blocked_writers() == 0) {
    std::this_thread::yield();
  }
  ch->input()->close();
  producer.join();
  EXPECT_TRUE(threw.load());
}

TEST(Typed, AbortWakesParkedReader) {
  auto ch = make_typed_channel<std::int64_t>({.capacity = 256});
  std::atomic<bool> interrupted{false};
  std::jthread consumer{[&] {
    TypedReader<std::int64_t> reader{ch->input()};
    try {
      (void)reader.get();
    } catch (const Interrupted&) {
      interrupted.store(true);
    }
  }};
  while (ch->state()->typed->blocked_readers() == 0) {
    std::this_thread::yield();
  }
  ch->state()->typed->abort();
  consumer.join();
  EXPECT_TRUE(interrupted.load());
}

TEST(Typed, GrowUnblocksParkedWriter) {
  auto ch = make_typed_channel<std::int64_t>({.capacity = 64});
  std::atomic<int> pushed{0};
  std::jthread producer{[&] {
    TypedWriter<std::int64_t> writer{ch->output()};
    for (std::int64_t i = 0; i < 100; ++i) {
      writer.put(i);
      pushed.fetch_add(1);
    }
  }};
  while (ch->state()->typed->blocked_writers() == 0) {
    std::this_thread::yield();
  }
  ch->state()->typed->grow(256);  // Parks' rule: grow the full channel
  producer.join();
  EXPECT_EQ(pushed.load(), 100);
  TypedReader<std::int64_t> reader{ch->input()};
  for (std::int64_t i = 0; i < 100; ++i) {
    const auto v = reader.get();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);  // grow's slot remap preserved order
  }
}

// --- demotion --------------------------------------------------------------

TEST(Typed, DemotionFlushesBacklogThenBothSidesFallBack) {
  auto ch = make_typed_channel<std::int64_t>({.capacity = 4096});
  TypedWriter<std::int64_t> writer{ch->output()};
  for (std::int64_t i = 0; i < 10; ++i) writer.put(i);

  // What the ship cut does: backlog into the pipe, in wire format.
  ch->pipe()->set_unbounded();
  io::LocalOutputStream sink{ch->pipe()};
  ch->state()->typed->demote_into(sink);
  EXPECT_TRUE(ch->state()->typed->demoted());

  // The producer's next put discovers the demotion and encodes through
  // the endpoint; the consumer drains [ring backlog][byte writes] in
  // order with no seam.
  for (std::int64_t i = 10; i < 20; ++i) writer.put(i);
  EXPECT_FALSE(writer.fast_path());

  TypedReader<std::int64_t> reader{ch->input()};
  for (std::int64_t i = 0; i < 20; ++i) {
    const auto v = reader.get();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(reader.fast_path());

  // Counters stayed seamless across the demotion: 20 tokens, 160 bytes.
  EXPECT_EQ(ch->state()->metrics->tokens_written.load(), 20u);
  EXPECT_EQ(ch->state()->metrics->bytes_written.load(), 160u);
}

TEST(Typed, ConsumerParkedInRingSurvivesDemotion) {
  // The race the gate protects: a consumer blocks on an empty ring, the
  // producer's endpoint ships (demoting the ring), and the next values
  // arrive as bytes.  The parked consumer must wake, fall back, and see a
  // gapless stream.
  auto ch = make_typed_channel<std::int64_t>({.capacity = 4096});
  CollectSink<std::int64_t> sink;
  std::jthread consumer{[&] {
    TypedReader<std::int64_t> reader{ch->input()};
    while (const auto v = reader.get()) sink.push(*v);
  }};
  while (ch->state()->typed->blocked_readers() == 0) {
    std::this_thread::yield();
  }
  ch->pipe()->set_unbounded();
  io::LocalOutputStream pipe_sink{ch->pipe()};
  ch->state()->typed->demote_into(pipe_sink);

  TypedWriter<std::int64_t> writer{ch->output()};
  for (std::int64_t i = 0; i < 50; ++i) writer.put(i);
  writer.close();
  consumer.join();
  const auto values = sink.values();
  ASSERT_EQ(values.size(), 50u);
  for (std::int64_t i = 0; i < 50; ++i) EXPECT_EQ(values[i], i);
}

/// Codec whose encode throws on a marker value: the demotion audit case.
struct ExplodingCodec {
  static constexpr std::size_t kWireSize = 8;
  static void encode(std::int64_t v, io::OutputStream& out) {
    if (v == 7) throw SerializationError{"exploding codec"};
    Codec<std::int64_t>::encode(v, out);
  }
  static std::int64_t decode(io::InputStream& in) {
    return Codec<std::int64_t>::decode(in);
  }
};

TEST(Typed, ThrowingEncodeAtDemotionPoisonsRingNotTheStream) {
  auto ch = make_typed_channel<std::int64_t, ExplodingCodec>(
      {.capacity = 4096});
  TypedWriter<std::int64_t, ExplodingCodec> writer{ch->output()};
  for (std::int64_t i = 5; i < 10; ++i) writer.put(i);  // includes 7

  io::MemoryOutputStream sink;
  EXPECT_THROW(ch->state()->typed->demote_into(sink), SerializationError);
  // All-or-nothing: the failed cut published no partial token.
  EXPECT_TRUE(sink.data().empty());
  EXPECT_TRUE(ch->state()->typed->demoted());

  // The consumer's history has a hole; it must see WorkerLost, never a
  // clean end-of-stream.
  TypedReader<std::int64_t, ExplodingCodec> reader{ch->input()};
  EXPECT_THROW((void)reader.get(), WorkerLost);
}

// --- serializable typed processes for the ship / determinacy matrix -------

class TypedSource final : public core::IterativeProcess {
 public:
  TypedSource() = default;
  TypedSource(std::int64_t start,
              std::shared_ptr<core::ChannelOutputStream> out, long iterations,
              std::int64_t delay_us = 0)
      : IterativeProcess(iterations), next_(start), delay_us_(delay_us) {
    track_output(std::move(out));
  }

  std::string type_name() const override { return "test.TypedSource"; }
  void write_fields(serial::ObjectOutputStream& out) const override {
    write_base(out);
    out.write_i64(next_);
    out.write_i64(delay_us_);
  }
  static std::shared_ptr<TypedSource> read_object(
      serial::ObjectInputStream& in) {
    auto process = std::make_shared<TypedSource>();
    process->read_base(in);
    process->next_ = in.read_i64();
    process->delay_us_ = in.read_i64();
    return process;
  }

 protected:
  void step() override {
    // The writer is rebuilt lazily after a migration: a reconstructed
    // remote endpoint has no ring, so it transparently takes the byte
    // path.
    if (!writer_) writer_.emplace(output(0));
    writer_->put(next_++);
    if (delay_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds{delay_us_});
    }
  }

 private:
  std::optional<TypedWriter<std::int64_t>> writer_;
  std::int64_t next_ = 0;
  std::int64_t delay_us_ = 0;
};

[[maybe_unused]] const bool kTypedSourceRegistered =
    serial::register_type<TypedSource>("test.TypedSource");

class TypedIdentity final : public core::IterativeProcess {
 public:
  TypedIdentity() = default;
  TypedIdentity(std::shared_ptr<core::ChannelInputStream> in,
                std::shared_ptr<core::ChannelOutputStream> out)
      : IterativeProcess(0) {
    track_input(std::move(in));
    track_output(std::move(out));
  }

  std::string type_name() const override { return "test.TypedIdentity"; }
  void write_fields(serial::ObjectOutputStream& out) const override {
    write_base(out);
  }
  static std::shared_ptr<TypedIdentity> read_object(
      serial::ObjectInputStream& in) {
    auto process = std::make_shared<TypedIdentity>();
    process->read_base(in);
    return process;
  }

 protected:
  void step() override {
    if (!reader_) reader_.emplace(input(0));
    if (!writer_) writer_.emplace(output(0));
    const auto v = reader_->get();
    if (!v) throw EndOfStream{};
    writer_->put(*v);
  }

 private:
  std::optional<TypedReader<std::int64_t>> reader_;
  std::optional<TypedWriter<std::int64_t>> writer_;
};

[[maybe_unused]] const bool kTypedIdentityRegistered =
    serial::register_type<TypedIdentity>("test.TypedIdentity");

/// Collects typed values into a CollectSink (local-only, like Collect).
class TypedCollect final : public core::IterativeProcess {
 public:
  TypedCollect(std::shared_ptr<core::ChannelInputStream> in,
               std::shared_ptr<CollectSink<std::int64_t>> sink,
               std::int64_t delay_us = 0)
      : sink_(std::move(sink)), delay_us_(delay_us) {
    track_input(std::move(in));
  }

  std::string type_name() const override { return "test.TypedCollect"; }
  void write_fields(serial::ObjectOutputStream&) const override {
    throw SerializationError{"TypedCollect holds a process-local sink"};
  }

 protected:
  void step() override {
    if (!reader_) reader_.emplace(input(0));
    const auto v = reader_->get();
    if (!v) throw EndOfStream{};
    sink_->push(*v);
    if (delay_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds{delay_us_});
    }
  }

 private:
  std::optional<TypedReader<std::int64_t>> reader_;
  std::shared_ptr<CollectSink<std::int64_t>> sink_;
  std::int64_t delay_us_ = 0;
};

// --- mid-run ship forces demotion ------------------------------------------

TEST(TypedShip, ProducerShipsMidRunConsumerFallsBackGapless) {
  // replace_output_endpoint's Local branch: the producer leaves, the ring
  // demotes into the pipe, the staying consumer drains [ring backlog]
  // [socket bytes] in order.
  auto node_a = dist::NodeContext::create();
  auto node_b = dist::NodeContext::create();
  auto ch = make_typed_channel<std::int64_t>({.capacity = 512});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto producer =
      std::make_shared<TypedSource>(0, ch->output(), 300, /*delay_us=*/50);
  auto drain = std::make_shared<TypedCollect>(ch->input(), sink);

  std::jthread drain_thread{[&] { drain->run(); }};
  std::jthread run_a{[&] { producer->run(); }};
  while (sink->size() < 30) std::this_thread::yield();

  producer->request_pause();
  ASSERT_TRUE(producer->await_pause());
  const ByteVector shipment = dist::ship_process(node_a, producer);
  producer->abandon();
  run_a.join();
  EXPECT_TRUE(ch->state()->typed->demoted());

  auto at_b = std::dynamic_pointer_cast<core::IterativeProcess>(
      dist::receive_process(node_b, {shipment.data(), shipment.size()}));
  ASSERT_TRUE(at_b);
  std::jthread run_b{[&] { at_b->run(); }};

  drain_thread.join();
  const auto values = sink->values();
  ASSERT_EQ(values.size(), 300u);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(values[i], i);  // no loss, no dup
}

TEST(TypedShip, MiddleStageShipsBothRingsDemote) {
  // Shipping a stage with one typed input and one typed output exercises
  // both cut paths at once: replace_input_endpoint (its upstream ring)
  // and replace_output_endpoint (its downstream ring).
  auto node_a = dist::NodeContext::create();
  auto node_b = dist::NodeContext::create();
  auto ch1 = make_typed_channel<std::int64_t>({.capacity = 512});
  auto ch2 = make_typed_channel<std::int64_t>({.capacity = 512});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto source =
      std::make_shared<TypedSource>(0, ch1->output(), 300, /*delay_us=*/50);
  auto middle = std::make_shared<TypedIdentity>(ch1->input(), ch2->output());
  auto drain = std::make_shared<TypedCollect>(ch2->input(), sink);

  std::jthread source_thread{[&] { source->run(); }};
  std::jthread drain_thread{[&] { drain->run(); }};
  std::jthread run_a{[&] { middle->run(); }};
  while (sink->size() < 30) std::this_thread::yield();

  middle->request_pause();
  ASSERT_TRUE(middle->await_pause());
  const ByteVector shipment = dist::ship_process(node_a, middle);
  middle->abandon();
  run_a.join();
  EXPECT_TRUE(ch1->state()->typed->demoted());
  EXPECT_TRUE(ch2->state()->typed->demoted());

  auto at_b = std::dynamic_pointer_cast<core::IterativeProcess>(
      dist::receive_process(node_b, {shipment.data(), shipment.size()}));
  ASSERT_TRUE(at_b);
  std::jthread run_b{[&] { at_b->run(); }};

  source_thread.join();
  drain_thread.join();
  const auto values = sink->values();
  ASSERT_EQ(values.size(), 300u);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(values[i], i);
}

// --- determinacy matrix ----------------------------------------------------

struct SchedConfig {
  std::string label;
  sched::SchedulerOptions options;
};

std::vector<SchedConfig> scheduler_matrix() {
  std::vector<SchedConfig> matrix;
  matrix.push_back({"thread-per-process", {}});
  for (const unsigned workers : {1u, 4u}) {
    sched::SchedulerOptions options;
    options.mode = sched::SchedMode::kWorkSteal;
    options.workers = workers;
    matrix.push_back(
        {"work-steal x" + std::to_string(workers), std::move(options)});
  }
  return matrix;
}

std::vector<std::int64_t> run_typed_pipeline(
    const sched::SchedulerOptions& options, bool typed) {
  Network network;
  network.set_scheduler(options);
  std::shared_ptr<Channel> ch1, ch2;
  if (typed) {
    ch1 = make_typed_channel<std::int64_t>({.capacity = 128});
    ch2 = make_typed_channel<std::int64_t>({.capacity = 128});
  } else {
    ch1 = std::make_shared<Channel>(ChannelOptions{.capacity = 128});
    ch2 = std::make_shared<Channel>(ChannelOptions{.capacity = 128});
  }
  network.watch(ch1);
  network.watch(ch2);
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.add(std::make_shared<TypedSource>(-100, ch1->output(), 400));
  network.add(std::make_shared<TypedIdentity>(ch1->input(), ch2->output()));
  network.add(std::make_shared<TypedCollect>(ch2->input(), sink));
  network.run();
  return sink->values();
}

TEST(TypedDeterminacy, MatrixByteIdenticalAcrossPlanesAndSchedulers) {
  // {typed fast path, byte stream} x {thread-per-process, M:N}: the same
  // graph must produce the identical history on every combination.  The
  // typed endpoints themselves pick the plane: with no ring installed
  // they run the byte path through the same Codec.
  std::vector<std::int64_t> reference;
  for (const bool typed : {true, false}) {
    for (const auto& config : scheduler_matrix()) {
      const auto values = run_typed_pipeline(config.options, typed);
      ASSERT_EQ(values.size(), 400u)
          << (typed ? "typed " : "bytes ") << config.label;
      if (reference.empty()) {
        reference = values;
      } else {
        EXPECT_EQ(values, reference)
            << (typed ? "typed " : "bytes ") << config.label;
      }
    }
  }
  for (int i = 0; i < 400; ++i) EXPECT_EQ(reference[i], i - 100);
}

TEST(TypedDeterminacy, MidRunShipMatchesLocalHistory) {
  // The forced-demotion run must be byte-identical to the pure local
  // runs: 0..299 with no seam where the ring handed over to the socket.
  // (TypedShip.ProducerShipsMidRunConsumerFallsBackGapless asserts the
  // same order; this rechecks it against the local-plane reference.)
  const auto local = [&] {
    Network network;
    auto ch = make_typed_channel<std::int64_t>({.capacity = 512});
    network.watch(ch);
    auto sink = std::make_shared<CollectSink<std::int64_t>>();
    network.add(std::make_shared<TypedSource>(0, ch->output(), 300));
    network.add(std::make_shared<TypedCollect>(ch->input(), sink));
    network.run();
    return sink->values();
  }();
  ASSERT_EQ(local.size(), 300u);

  auto node_a = dist::NodeContext::create();
  auto node_b = dist::NodeContext::create();
  auto ch = make_typed_channel<std::int64_t>({.capacity = 512});
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto producer =
      std::make_shared<TypedSource>(0, ch->output(), 300, /*delay_us=*/50);
  auto drain = std::make_shared<TypedCollect>(ch->input(), sink);
  std::jthread drain_thread{[&] { drain->run(); }};
  std::jthread run_a{[&] { producer->run(); }};
  while (sink->size() < 50) std::this_thread::yield();
  producer->request_pause();
  ASSERT_TRUE(producer->await_pause());
  const ByteVector shipment = dist::ship_process(node_a, producer);
  producer->abandon();
  run_a.join();
  auto at_b = std::dynamic_pointer_cast<core::IterativeProcess>(
      dist::receive_process(node_b, {shipment.data(), shipment.size()}));
  ASSERT_TRUE(at_b);
  std::jthread run_b{[&] { at_b->run(); }};
  drain_thread.join();

  EXPECT_EQ(sink->values(), local);
}

// --- observability ---------------------------------------------------------

TEST(TypedObs, SnapshotCarriesRingStateThroughV6) {
  auto ch = make_typed_channel<std::int64_t>({.capacity = 4096,
                                              .label = "typed"});
  TypedWriter<std::int64_t> writer{ch->output()};
  for (std::int64_t i = 0; i < 12; ++i) writer.put(i);
  TypedReader<std::int64_t> reader{ch->input()};
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(reader.get().has_value());

  obs::NetworkSnapshot snap;
  snap.channels.push_back(core::snapshot_channel(*ch->state()));
  {
    const auto& c = snap.channels.back();
    EXPECT_TRUE(c.has_typed);
    EXPECT_FALSE(c.typed_demoted);
    EXPECT_EQ(c.typed_pushed, 12u);
    EXPECT_EQ(c.typed_popped, 5u);
    EXPECT_EQ(c.typed_buffered, 7u);
    // Live ring: occupancy reported in bytes via the codec's wire size so
    // the deadlock monitor's arithmetic is plane-agnostic.
    EXPECT_EQ(c.buffered, 56u);
    EXPECT_EQ(c.capacity, c.typed_capacity * 8);
  }

  // v6 writer -> v6 reader: typed fields survive the wire.
  const ByteVector wire = snap.encode();
  const auto decoded = obs::NetworkSnapshot::decode(wire);
  ASSERT_EQ(decoded.channels.size(), 1u);
  EXPECT_TRUE(decoded.channels[0].has_typed);
  EXPECT_EQ(decoded.channels[0].typed_pushed, 12u);
  EXPECT_EQ(decoded.channels[0].typed_popped, 5u);
  EXPECT_EQ(decoded.channels[0].typed_buffered, 7u);

  // v6 writer -> v1 reader: the old reader prefix-parses and simply
  // never sees the typed suffix.
  const auto old_reader = obs::NetworkSnapshot::decode_prefix(wire, 1);
  ASSERT_EQ(old_reader.channels.size(), 1u);
  EXPECT_EQ(old_reader.version, 1);
  EXPECT_FALSE(old_reader.channels[0].has_typed);
  EXPECT_EQ(old_reader.channels[0].bytes_written, 96u);

  // v1 writer -> v6 reader: typed fields stay default, nothing throws.
  const ByteVector old_wire = snap.encode_as(1);
  const auto from_old = obs::NetworkSnapshot::decode(old_wire);
  ASSERT_EQ(from_old.channels.size(), 1u);
  EXPECT_EQ(from_old.version, 1);
  EXPECT_FALSE(from_old.channels[0].has_typed);
  EXPECT_EQ(from_old.channels[0].bytes_written, 96u);
}

TEST(TypedObs, MonitorGrowsRingOnArtificialDeadlock) {
  // A typed producer with no consumer fills the ring and parks; the
  // deadlock monitor must find the ring (via the byte-denominated
  // snapshot fields) and grow it, exactly as it grows a byte pipe.
  Network network;
  network.enable_monitor(core::MonitorOptions{
      .poll_interval = std::chrono::milliseconds{20}});
  auto ch = make_typed_channel<std::int64_t>({.capacity = 64,
                                              .label = "ring"});
  network.watch(ch);
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  network.add(std::make_shared<TypedSource>(0, ch->output(), 100));
  // A consumer that will not read until the source finished: classic
  // artificial deadlock, resolvable by growth.
  std::atomic<bool> source_done{false};
  std::jthread unblocker{[&] {
    while (!source_done.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds{5});
    TypedReader<std::int64_t> reader{ch->input()};
    while (reader.get().has_value()) {
    }
  }};
  std::jthread runner{[&] {
    network.run();
    source_done.store(true);
  }};
  runner.join();
  source_done.store(true);
  unblocker.join();
  EXPECT_GE(network.growth_events(), 1u);
  EXPECT_GE(ch->state()->typed->capacity() * 8, 100u * 8u);
}

// --- teardown-gridlock regression (dist CLOSE frame) -----------------------

/// Serializable consumer that reads a fixed number of i64 tokens and
/// returns, closing its endpoints -- the remote-consumer half of the
/// teardown-gridlock regression.
class DiscardN final : public core::IterativeProcess {
 public:
  DiscardN() = default;
  DiscardN(std::shared_ptr<core::ChannelInputStream> in, long iterations)
      : IterativeProcess(iterations) {
    track_input(std::move(in));
  }
  std::string type_name() const override { return "test.DiscardN"; }
  void write_fields(serial::ObjectOutputStream& out) const override {
    write_base(out);
  }
  static std::shared_ptr<DiscardN> read_object(serial::ObjectInputStream& in) {
    auto process = std::make_shared<DiscardN>();
    process->read_base(in);
    return process;
  }

 protected:
  void step() override {
    io::DataInputStream in{input(0)};
    (void)in.read_i64();
  }
};

[[maybe_unused]] const bool kDiscardNRegistered =
    serial::register_type<DiscardN>("test.DiscardN");

TEST(TypedTeardown, CloseFrameWakesProducerParkedOnCredit) {
  // The seed-era gridlock: a remote consumer finishes and closes while
  // the producer is parked in await_credit with an exhausted window.  The
  // consumer's dist CLOSE frame must wake the producer into
  // ChannelClosed; before the fix this combination hung forever (the FIN
  // could be starved behind the unread credit backlog).  Runs under
  // whichever transport DPN_TRANSPORT selects -- the tsan-typed preset
  // covers both.
  auto node_a = dist::NodeContext::create();
  auto node_b = dist::NodeContext::create();
  // Tiny credit window: the producer outruns it immediately and parks.
  auto ch = std::make_shared<Channel>(core::ChannelOptions{
      .capacity = 256, .label = "gridlock", .remote = {.credit_window = 2048}});
  auto producer = std::make_shared<processes::Sequence>(
      0, ch->output(), 200000);  // 1.6 MB if it ever completed
  std::shared_ptr<core::Process> consumer =
      std::make_shared<DiscardN>(ch->input(), 100);

  const ByteVector shipment = dist::ship_process(node_a, consumer);
  consumer = dist::receive_process(node_b, {shipment.data(),
                                            shipment.size()});

  std::atomic<bool> producer_done{false};
  std::jthread producer_thread{[&] {
    producer->run();  // ends via ChannelClosed cascade
    producer_done.store(true);
  }};
  std::jthread consumer_thread{[&] { consumer->run(); }};
  consumer_thread.join();

  // The producer must unwedge promptly; 10 s is forever next to the
  // microseconds the wake takes, yet far under the pre-fix infinity.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{10};
  while (!producer_done.load() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  }
  EXPECT_TRUE(producer_done.load()) << "producer still parked on credit";
  producer_thread.join();
}

}  // namespace
}  // namespace dpn
