#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <thread>

#include "core/channel.hpp"
#include "dist/node.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "rmi/compute_server.hpp"
#include "rmi/registry.hpp"

/// The real thing: a separate *operating-system process* runs the generic
/// compute server binary (examples/pn_server); this test plays client,
/// ships live process graphs to it over real sockets, and verifies the
/// data and the termination cascade cross the process boundary.
///
/// Every other distributed test runs multiple "servers" inside one
/// process; this one closes the gap to an actual deployment.
namespace dpn {
namespace {

using core::Channel;
using processes::Collect;
using processes::CollectSink;
using processes::Identity;
using processes::Sequence;

#ifndef PN_SERVER_PATH
#error "PN_SERVER_PATH must be defined by the build"
#endif

class ServerProcess {
 public:
  explicit ServerProcess(std::uint16_t registry_port) {
    pid_ = fork();
    if (pid_ == 0) {
      const std::string port = std::to_string(registry_port);
      execl(PN_SERVER_PATH, "pn_server", "external-server", "127.0.0.1",
            port.c_str(), static_cast<char*>(nullptr));
      _exit(127);  // exec failed
    }
  }

  ~ServerProcess() { stop(); }

  void stop() {
    if (pid_ <= 0) return;
    kill(pid_, SIGTERM);
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
  }

  bool alive() const {
    if (pid_ <= 0) return false;
    return kill(pid_, 0) == 0;
  }

 private:
  pid_t pid_ = -1;
};

rmi::ServerHandle wait_for_server(const rmi::Registry& registry,
                                  const std::shared_ptr<dist::NodeContext>&
                                      node) {
  rmi::RegistryClient client{"127.0.0.1", registry.port()};
  for (int attempt = 0; attempt < 500; ++attempt) {
    if (auto endpoint = client.lookup("external-server")) {
      return rmi::ServerHandle{*endpoint, node};
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
  }
  throw std::runtime_error{"external pn_server never registered"};
}

TEST(MultiProcess, PipelineStageInSeparateOsProcess) {
  rmi::Registry registry{0};
  ServerProcess server{registry.port()};
  ASSERT_TRUE(server.alive());

  auto node = dist::NodeContext::create();
  auto handle = wait_for_server(registry, node);
  EXPECT_NO_THROW(handle.ping());

  // Ship a live pipeline stage into the other OS process; stream data
  // through it and back.
  auto ch1 = std::make_shared<Channel>(4096, "to-server");
  auto ch2 = std::make_shared<Channel>(4096, "from-server");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto middle = std::make_shared<Identity>(ch1->input(), ch2->output());
  handle.submit(middle);

  auto source = std::make_shared<Sequence>(0, ch1->output(), 500);
  auto drain = std::make_shared<Collect>(ch2->input(), sink);
  std::jthread src{[&] { source->run(); }};
  drain->run();  // ends when the cascade crosses back from the server

  ASSERT_EQ(sink->size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(sink->values()[i], i);
  EXPECT_TRUE(server.alive());  // the server survived the graph's end
  server.stop();
}

TEST(MultiProcess, ConsumerLimitKillsRemoteProducerAcrossProcesses) {
  rmi::Registry registry{0};
  ServerProcess server{registry.port()};
  auto node = dist::NodeContext::create();
  auto handle = wait_for_server(registry, node);

  // An *unbounded* producer hosted in the other OS process; our local
  // consumer stops after 20 elements and the ChannelClosed cascade must
  // terminate the remote producer (no runaway process left behind --
  // paper Section 3.4's "no remote processes are left running").
  auto ch = std::make_shared<Channel>(4096, "stream");
  auto sink = std::make_shared<CollectSink<std::int64_t>>();
  auto producer = std::make_shared<Sequence>(0, ch->output());  // unbounded
  handle.submit(producer);

  auto drain = std::make_shared<Collect>(ch->input(), sink, 20);
  drain->run();
  ASSERT_EQ(sink->size(), 20u);

  // The graceful SIGTERM shutdown joins hosted processes: it can only
  // complete because the cascade stopped the producer.
  server.stop();
  SUCCEED();
}

}  // namespace
}  // namespace dpn
