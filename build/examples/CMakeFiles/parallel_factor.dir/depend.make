# Empty dependencies file for parallel_factor.
# This may be replaced when dependencies are built.
