file(REMOVE_RECURSE
  "CMakeFiles/parallel_factor.dir/parallel_factor.cpp.o"
  "CMakeFiles/parallel_factor.dir/parallel_factor.cpp.o.d"
  "parallel_factor"
  "parallel_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
