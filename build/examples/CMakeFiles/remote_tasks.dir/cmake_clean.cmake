file(REMOVE_RECURSE
  "CMakeFiles/remote_tasks.dir/remote_tasks.cpp.o"
  "CMakeFiles/remote_tasks.dir/remote_tasks.cpp.o.d"
  "remote_tasks"
  "remote_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
