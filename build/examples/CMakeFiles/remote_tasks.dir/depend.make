# Empty dependencies file for remote_tasks.
# This may be replaced when dependencies are built.
