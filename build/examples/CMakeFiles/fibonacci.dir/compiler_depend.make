# Empty compiler generated dependencies file for fibonacci.
# This may be replaced when dependencies are built.
