# Empty dependencies file for beamformer.
# This may be replaced when dependencies are built.
