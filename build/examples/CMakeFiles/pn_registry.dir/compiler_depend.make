# Empty compiler generated dependencies file for pn_registry.
# This may be replaced when dependencies are built.
