file(REMOVE_RECURSE
  "CMakeFiles/pn_registry.dir/pn_registry.cpp.o"
  "CMakeFiles/pn_registry.dir/pn_registry.cpp.o.d"
  "pn_registry"
  "pn_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
