# Empty compiler generated dependencies file for newton_sqrt.
# This may be replaced when dependencies are built.
