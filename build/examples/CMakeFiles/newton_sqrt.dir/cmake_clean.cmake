file(REMOVE_RECURSE
  "CMakeFiles/newton_sqrt.dir/newton_sqrt.cpp.o"
  "CMakeFiles/newton_sqrt.dir/newton_sqrt.cpp.o.d"
  "newton_sqrt"
  "newton_sqrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newton_sqrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
