file(REMOVE_RECURSE
  "CMakeFiles/pn_server.dir/pn_server.cpp.o"
  "CMakeFiles/pn_server.dir/pn_server.cpp.o.d"
  "pn_server"
  "pn_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
