# Empty dependencies file for pn_server.
# This may be replaced when dependencies are built.
