# Empty compiler generated dependencies file for distributed_fibonacci.
# This may be replaced when dependencies are built.
