file(REMOVE_RECURSE
  "CMakeFiles/distributed_fibonacci.dir/distributed_fibonacci.cpp.o"
  "CMakeFiles/distributed_fibonacci.dir/distributed_fibonacci.cpp.o.d"
  "distributed_fibonacci"
  "distributed_fibonacci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_fibonacci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
