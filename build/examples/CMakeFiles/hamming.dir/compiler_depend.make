# Empty compiler generated dependencies file for hamming.
# This may be replaced when dependencies are built.
