file(REMOVE_RECURSE
  "CMakeFiles/hamming.dir/hamming.cpp.o"
  "CMakeFiles/hamming.dir/hamming.cpp.o.d"
  "hamming"
  "hamming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hamming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
