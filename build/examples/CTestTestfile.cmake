# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "5")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fibonacci "/root/repo/build/examples/fibonacci" "15")
set_tests_properties(example_fibonacci PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sieve_below "/root/repo/build/examples/sieve" "below" "100")
set_tests_properties(example_sieve_below PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sieve_first "/root/repo/build/examples/sieve" "first" "50")
set_tests_properties(example_sieve_first PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_newton "/root/repo/build/examples/newton_sqrt" "2" "9" "1e6")
set_tests_properties(example_newton PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hamming "/root/repo/build/examples/hamming" "30")
set_tests_properties(example_hamming PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_fibonacci "/root/repo/build/examples/distributed_fibonacci" "15")
set_tests_properties(example_distributed_fibonacci PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_parallel_factor "/root/repo/build/examples/parallel_factor" "8" "32" "80" "dynamic")
set_tests_properties(example_parallel_factor PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_parallel_factor_static "/root/repo/build/examples/parallel_factor" "4" "32" "80" "static")
set_tests_properties(example_parallel_factor_static PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_image_pipeline "/root/repo/build/examples/image_pipeline" "256" "192" "4")
set_tests_properties(example_image_pipeline PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_beamformer "/root/repo/build/examples/beamformer" "0.35" "0.25")
set_tests_properties(example_beamformer PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;35;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_migration "/root/repo/build/examples/migration" "400")
set_tests_properties(example_migration PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;39;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_remote_tasks "/root/repo/build/examples/remote_tasks" "3" "32" "80")
set_tests_properties(example_remote_tasks PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;42;add_test;/root/repo/examples/CMakeLists.txt;0;")
