# Empty compiler generated dependencies file for dpn_dsp.
# This may be replaced when dependencies are built.
