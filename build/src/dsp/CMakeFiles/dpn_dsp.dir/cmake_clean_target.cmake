file(REMOVE_RECURSE
  "libdpn_dsp.a"
)
