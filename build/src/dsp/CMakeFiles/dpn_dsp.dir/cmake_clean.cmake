file(REMOVE_RECURSE
  "CMakeFiles/dpn_dsp.dir/beam.cpp.o"
  "CMakeFiles/dpn_dsp.dir/beam.cpp.o.d"
  "CMakeFiles/dpn_dsp.dir/fft.cpp.o"
  "CMakeFiles/dpn_dsp.dir/fft.cpp.o.d"
  "libdpn_dsp.a"
  "libdpn_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpn_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
