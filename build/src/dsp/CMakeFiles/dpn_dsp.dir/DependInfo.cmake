
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/beam.cpp" "src/dsp/CMakeFiles/dpn_dsp.dir/beam.cpp.o" "gcc" "src/dsp/CMakeFiles/dpn_dsp.dir/beam.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/dpn_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/dpn_dsp.dir/fft.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dpn_io.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/dpn_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dpn_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
