# Empty compiler generated dependencies file for dpn_core.
# This may be replaced when dependencies are built.
