file(REMOVE_RECURSE
  "libdpn_core.a"
)
