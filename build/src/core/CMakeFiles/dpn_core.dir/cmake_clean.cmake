file(REMOVE_RECURSE
  "CMakeFiles/dpn_core.dir/channel.cpp.o"
  "CMakeFiles/dpn_core.dir/channel.cpp.o.d"
  "CMakeFiles/dpn_core.dir/network.cpp.o"
  "CMakeFiles/dpn_core.dir/network.cpp.o.d"
  "CMakeFiles/dpn_core.dir/process.cpp.o"
  "CMakeFiles/dpn_core.dir/process.cpp.o.d"
  "libdpn_core.a"
  "libdpn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
