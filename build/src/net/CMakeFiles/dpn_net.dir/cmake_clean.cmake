file(REMOVE_RECURSE
  "CMakeFiles/dpn_net.dir/frames.cpp.o"
  "CMakeFiles/dpn_net.dir/frames.cpp.o.d"
  "CMakeFiles/dpn_net.dir/socket.cpp.o"
  "CMakeFiles/dpn_net.dir/socket.cpp.o.d"
  "libdpn_net.a"
  "libdpn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
