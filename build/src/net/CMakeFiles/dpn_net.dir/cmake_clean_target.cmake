file(REMOVE_RECURSE
  "libdpn_net.a"
)
