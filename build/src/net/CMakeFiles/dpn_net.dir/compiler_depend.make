# Empty compiler generated dependencies file for dpn_net.
# This may be replaced when dependencies are built.
