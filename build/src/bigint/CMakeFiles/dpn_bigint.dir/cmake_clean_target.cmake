file(REMOVE_RECURSE
  "libdpn_bigint.a"
)
