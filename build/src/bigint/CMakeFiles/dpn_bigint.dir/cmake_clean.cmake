file(REMOVE_RECURSE
  "CMakeFiles/dpn_bigint.dir/bigint.cpp.o"
  "CMakeFiles/dpn_bigint.dir/bigint.cpp.o.d"
  "libdpn_bigint.a"
  "libdpn_bigint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpn_bigint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
