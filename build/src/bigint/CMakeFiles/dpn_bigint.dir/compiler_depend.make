# Empty compiler generated dependencies file for dpn_bigint.
# This may be replaced when dependencies are built.
