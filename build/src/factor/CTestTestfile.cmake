# CMake generated Testfile for 
# Source directory: /root/repo/src/factor
# Build directory: /root/repo/build/src/factor
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
