file(REMOVE_RECURSE
  "libdpn_factor.a"
)
