file(REMOVE_RECURSE
  "CMakeFiles/dpn_factor.dir/factor.cpp.o"
  "CMakeFiles/dpn_factor.dir/factor.cpp.o.d"
  "libdpn_factor.a"
  "libdpn_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpn_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
