# Empty compiler generated dependencies file for dpn_factor.
# This may be replaced when dependencies are built.
