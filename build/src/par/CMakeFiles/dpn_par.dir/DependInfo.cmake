
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/par/generic.cpp" "src/par/CMakeFiles/dpn_par.dir/generic.cpp.o" "gcc" "src/par/CMakeFiles/dpn_par.dir/generic.cpp.o.d"
  "/root/repo/src/par/schema.cpp" "src/par/CMakeFiles/dpn_par.dir/schema.cpp.o" "gcc" "src/par/CMakeFiles/dpn_par.dir/schema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/processes/CMakeFiles/dpn_processes.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/dpn_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dpn_io.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dpn_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
