# Empty compiler generated dependencies file for dpn_par.
# This may be replaced when dependencies are built.
