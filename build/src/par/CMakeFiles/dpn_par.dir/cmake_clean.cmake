file(REMOVE_RECURSE
  "CMakeFiles/dpn_par.dir/generic.cpp.o"
  "CMakeFiles/dpn_par.dir/generic.cpp.o.d"
  "CMakeFiles/dpn_par.dir/schema.cpp.o"
  "CMakeFiles/dpn_par.dir/schema.cpp.o.d"
  "libdpn_par.a"
  "libdpn_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpn_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
