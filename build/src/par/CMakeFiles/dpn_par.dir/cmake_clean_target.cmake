file(REMOVE_RECURSE
  "libdpn_par.a"
)
