file(REMOVE_RECURSE
  "CMakeFiles/dpn_image.dir/codec.cpp.o"
  "CMakeFiles/dpn_image.dir/codec.cpp.o.d"
  "CMakeFiles/dpn_image.dir/image.cpp.o"
  "CMakeFiles/dpn_image.dir/image.cpp.o.d"
  "CMakeFiles/dpn_image.dir/tasks.cpp.o"
  "CMakeFiles/dpn_image.dir/tasks.cpp.o.d"
  "libdpn_image.a"
  "libdpn_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpn_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
