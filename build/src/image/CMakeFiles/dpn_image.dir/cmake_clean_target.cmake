file(REMOVE_RECURSE
  "libdpn_image.a"
)
