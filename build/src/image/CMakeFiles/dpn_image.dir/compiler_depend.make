# Empty compiler generated dependencies file for dpn_image.
# This may be replaced when dependencies are built.
