
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/codec.cpp" "src/image/CMakeFiles/dpn_image.dir/codec.cpp.o" "gcc" "src/image/CMakeFiles/dpn_image.dir/codec.cpp.o.d"
  "/root/repo/src/image/image.cpp" "src/image/CMakeFiles/dpn_image.dir/image.cpp.o" "gcc" "src/image/CMakeFiles/dpn_image.dir/image.cpp.o.d"
  "/root/repo/src/image/tasks.cpp" "src/image/CMakeFiles/dpn_image.dir/tasks.cpp.o" "gcc" "src/image/CMakeFiles/dpn_image.dir/tasks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/par/CMakeFiles/dpn_par.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/dpn_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dpn_io.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dpn_support.dir/DependInfo.cmake"
  "/root/repo/build/src/processes/CMakeFiles/dpn_processes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
