file(REMOVE_RECURSE
  "libdpn_dist.a"
)
