file(REMOVE_RECURSE
  "CMakeFiles/dpn_dist.dir/ddm.cpp.o"
  "CMakeFiles/dpn_dist.dir/ddm.cpp.o.d"
  "CMakeFiles/dpn_dist.dir/node.cpp.o"
  "CMakeFiles/dpn_dist.dir/node.cpp.o.d"
  "CMakeFiles/dpn_dist.dir/remote_streams.cpp.o"
  "CMakeFiles/dpn_dist.dir/remote_streams.cpp.o.d"
  "CMakeFiles/dpn_dist.dir/ship.cpp.o"
  "CMakeFiles/dpn_dist.dir/ship.cpp.o.d"
  "libdpn_dist.a"
  "libdpn_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpn_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
