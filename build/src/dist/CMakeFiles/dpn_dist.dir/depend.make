# Empty dependencies file for dpn_dist.
# This may be replaced when dependencies are built.
