
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/ddm.cpp" "src/dist/CMakeFiles/dpn_dist.dir/ddm.cpp.o" "gcc" "src/dist/CMakeFiles/dpn_dist.dir/ddm.cpp.o.d"
  "/root/repo/src/dist/node.cpp" "src/dist/CMakeFiles/dpn_dist.dir/node.cpp.o" "gcc" "src/dist/CMakeFiles/dpn_dist.dir/node.cpp.o.d"
  "/root/repo/src/dist/remote_streams.cpp" "src/dist/CMakeFiles/dpn_dist.dir/remote_streams.cpp.o" "gcc" "src/dist/CMakeFiles/dpn_dist.dir/remote_streams.cpp.o.d"
  "/root/repo/src/dist/ship.cpp" "src/dist/CMakeFiles/dpn_dist.dir/ship.cpp.o" "gcc" "src/dist/CMakeFiles/dpn_dist.dir/ship.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/dpn_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dpn_io.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dpn_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
