file(REMOVE_RECURSE
  "libdpn_serial.a"
)
