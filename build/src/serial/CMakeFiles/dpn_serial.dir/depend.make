# Empty dependencies file for dpn_serial.
# This may be replaced when dependencies are built.
