file(REMOVE_RECURSE
  "CMakeFiles/dpn_serial.dir/serial.cpp.o"
  "CMakeFiles/dpn_serial.dir/serial.cpp.o.d"
  "libdpn_serial.a"
  "libdpn_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpn_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
