# Empty dependencies file for dpn_cluster.
# This may be replaced when dependencies are built.
