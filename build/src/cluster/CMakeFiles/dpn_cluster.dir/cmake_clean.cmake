file(REMOVE_RECURSE
  "CMakeFiles/dpn_cluster.dir/cluster.cpp.o"
  "CMakeFiles/dpn_cluster.dir/cluster.cpp.o.d"
  "libdpn_cluster.a"
  "libdpn_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpn_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
