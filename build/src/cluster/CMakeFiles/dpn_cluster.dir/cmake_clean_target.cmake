file(REMOVE_RECURSE
  "libdpn_cluster.a"
)
