file(REMOVE_RECURSE
  "libdpn_io.a"
)
