# Empty dependencies file for dpn_io.
# This may be replaced when dependencies are built.
