file(REMOVE_RECURSE
  "CMakeFiles/dpn_io.dir/data.cpp.o"
  "CMakeFiles/dpn_io.dir/data.cpp.o.d"
  "CMakeFiles/dpn_io.dir/pipe.cpp.o"
  "CMakeFiles/dpn_io.dir/pipe.cpp.o.d"
  "CMakeFiles/dpn_io.dir/sequence.cpp.o"
  "CMakeFiles/dpn_io.dir/sequence.cpp.o.d"
  "CMakeFiles/dpn_io.dir/stream.cpp.o"
  "CMakeFiles/dpn_io.dir/stream.cpp.o.d"
  "libdpn_io.a"
  "libdpn_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpn_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
