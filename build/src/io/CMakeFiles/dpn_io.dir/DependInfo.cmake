
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/data.cpp" "src/io/CMakeFiles/dpn_io.dir/data.cpp.o" "gcc" "src/io/CMakeFiles/dpn_io.dir/data.cpp.o.d"
  "/root/repo/src/io/pipe.cpp" "src/io/CMakeFiles/dpn_io.dir/pipe.cpp.o" "gcc" "src/io/CMakeFiles/dpn_io.dir/pipe.cpp.o.d"
  "/root/repo/src/io/sequence.cpp" "src/io/CMakeFiles/dpn_io.dir/sequence.cpp.o" "gcc" "src/io/CMakeFiles/dpn_io.dir/sequence.cpp.o.d"
  "/root/repo/src/io/stream.cpp" "src/io/CMakeFiles/dpn_io.dir/stream.cpp.o" "gcc" "src/io/CMakeFiles/dpn_io.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dpn_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
