file(REMOVE_RECURSE
  "libdpn_rmi.a"
)
