
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rmi/compute_server.cpp" "src/rmi/CMakeFiles/dpn_rmi.dir/compute_server.cpp.o" "gcc" "src/rmi/CMakeFiles/dpn_rmi.dir/compute_server.cpp.o.d"
  "/root/repo/src/rmi/migrate.cpp" "src/rmi/CMakeFiles/dpn_rmi.dir/migrate.cpp.o" "gcc" "src/rmi/CMakeFiles/dpn_rmi.dir/migrate.cpp.o.d"
  "/root/repo/src/rmi/registry.cpp" "src/rmi/CMakeFiles/dpn_rmi.dir/registry.cpp.o" "gcc" "src/rmi/CMakeFiles/dpn_rmi.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/dpn_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/dpn_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dpn_io.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dpn_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
