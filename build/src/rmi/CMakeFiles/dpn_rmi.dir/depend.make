# Empty dependencies file for dpn_rmi.
# This may be replaced when dependencies are built.
