file(REMOVE_RECURSE
  "CMakeFiles/dpn_rmi.dir/compute_server.cpp.o"
  "CMakeFiles/dpn_rmi.dir/compute_server.cpp.o.d"
  "CMakeFiles/dpn_rmi.dir/migrate.cpp.o"
  "CMakeFiles/dpn_rmi.dir/migrate.cpp.o.d"
  "CMakeFiles/dpn_rmi.dir/registry.cpp.o"
  "CMakeFiles/dpn_rmi.dir/registry.cpp.o.d"
  "libdpn_rmi.a"
  "libdpn_rmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpn_rmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
