file(REMOVE_RECURSE
  "libdpn_support.a"
)
