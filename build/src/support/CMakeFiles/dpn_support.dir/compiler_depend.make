# Empty compiler generated dependencies file for dpn_support.
# This may be replaced when dependencies are built.
