file(REMOVE_RECURSE
  "CMakeFiles/dpn_support.dir/bytes.cpp.o"
  "CMakeFiles/dpn_support.dir/bytes.cpp.o.d"
  "CMakeFiles/dpn_support.dir/log.cpp.o"
  "CMakeFiles/dpn_support.dir/log.cpp.o.d"
  "libdpn_support.a"
  "libdpn_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpn_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
