# Empty dependencies file for dpn_processes.
# This may be replaced when dependencies are built.
