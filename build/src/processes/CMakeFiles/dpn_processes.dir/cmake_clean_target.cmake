file(REMOVE_RECURSE
  "libdpn_processes.a"
)
