
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/processes/arith.cpp" "src/processes/CMakeFiles/dpn_processes.dir/arith.cpp.o" "gcc" "src/processes/CMakeFiles/dpn_processes.dir/arith.cpp.o.d"
  "/root/repo/src/processes/basic.cpp" "src/processes/CMakeFiles/dpn_processes.dir/basic.cpp.o" "gcc" "src/processes/CMakeFiles/dpn_processes.dir/basic.cpp.o.d"
  "/root/repo/src/processes/copy.cpp" "src/processes/CMakeFiles/dpn_processes.dir/copy.cpp.o" "gcc" "src/processes/CMakeFiles/dpn_processes.dir/copy.cpp.o.d"
  "/root/repo/src/processes/merge.cpp" "src/processes/CMakeFiles/dpn_processes.dir/merge.cpp.o" "gcc" "src/processes/CMakeFiles/dpn_processes.dir/merge.cpp.o.d"
  "/root/repo/src/processes/router.cpp" "src/processes/CMakeFiles/dpn_processes.dir/router.cpp.o" "gcc" "src/processes/CMakeFiles/dpn_processes.dir/router.cpp.o.d"
  "/root/repo/src/processes/sieve.cpp" "src/processes/CMakeFiles/dpn_processes.dir/sieve.cpp.o" "gcc" "src/processes/CMakeFiles/dpn_processes.dir/sieve.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dpn_io.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/dpn_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dpn_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
