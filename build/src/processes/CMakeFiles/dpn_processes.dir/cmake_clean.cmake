file(REMOVE_RECURSE
  "CMakeFiles/dpn_processes.dir/arith.cpp.o"
  "CMakeFiles/dpn_processes.dir/arith.cpp.o.d"
  "CMakeFiles/dpn_processes.dir/basic.cpp.o"
  "CMakeFiles/dpn_processes.dir/basic.cpp.o.d"
  "CMakeFiles/dpn_processes.dir/copy.cpp.o"
  "CMakeFiles/dpn_processes.dir/copy.cpp.o.d"
  "CMakeFiles/dpn_processes.dir/merge.cpp.o"
  "CMakeFiles/dpn_processes.dir/merge.cpp.o.d"
  "CMakeFiles/dpn_processes.dir/router.cpp.o"
  "CMakeFiles/dpn_processes.dir/router.cpp.o.d"
  "CMakeFiles/dpn_processes.dir/sieve.cpp.o"
  "CMakeFiles/dpn_processes.dir/sieve.cpp.o.d"
  "libdpn_processes.a"
  "libdpn_processes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpn_processes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
