# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/serial_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/bigint_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/processes_test[1]_include.cmake")
include("/root/repo/build/tests/dist_test[1]_include.cmake")
include("/root/repo/build/tests/rmi_test[1]_include.cmake")
include("/root/repo/build/tests/par_test[1]_include.cmake")
include("/root/repo/build/tests/factor_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/migrate_test[1]_include.cmake")
include("/root/repo/build/tests/image_test[1]_include.cmake")
include("/root/repo/build/tests/dsp_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/determinacy_test[1]_include.cmake")
include("/root/repo/build/tests/ddm_test[1]_include.cmake")
include("/root/repo/build/tests/flowcontrol_test[1]_include.cmake")
include("/root/repo/build/tests/process_serial_test[1]_include.cmake")
include("/root/repo/build/tests/multiprocess_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/io_edge_test[1]_include.cmake")
