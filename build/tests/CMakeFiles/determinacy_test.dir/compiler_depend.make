# Empty compiler generated dependencies file for determinacy_test.
# This may be replaced when dependencies are built.
