# Empty compiler generated dependencies file for flowcontrol_test.
# This may be replaced when dependencies are built.
