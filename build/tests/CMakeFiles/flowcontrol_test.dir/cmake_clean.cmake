file(REMOVE_RECURSE
  "CMakeFiles/flowcontrol_test.dir/flowcontrol_test.cpp.o"
  "CMakeFiles/flowcontrol_test.dir/flowcontrol_test.cpp.o.d"
  "flowcontrol_test"
  "flowcontrol_test.pdb"
  "flowcontrol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowcontrol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
