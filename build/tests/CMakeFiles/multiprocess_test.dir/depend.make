# Empty dependencies file for multiprocess_test.
# This may be replaced when dependencies are built.
