file(REMOVE_RECURSE
  "CMakeFiles/ddm_test.dir/ddm_test.cpp.o"
  "CMakeFiles/ddm_test.dir/ddm_test.cpp.o.d"
  "ddm_test"
  "ddm_test.pdb"
  "ddm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
