# Empty dependencies file for process_serial_test.
# This may be replaced when dependencies are built.
