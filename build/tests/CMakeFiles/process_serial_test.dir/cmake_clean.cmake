file(REMOVE_RECURSE
  "CMakeFiles/process_serial_test.dir/process_serial_test.cpp.o"
  "CMakeFiles/process_serial_test.dir/process_serial_test.cpp.o.d"
  "process_serial_test"
  "process_serial_test.pdb"
  "process_serial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_serial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
