# Empty compiler generated dependencies file for io_edge_test.
# This may be replaced when dependencies are built.
