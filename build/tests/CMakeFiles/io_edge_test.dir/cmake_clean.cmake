file(REMOVE_RECURSE
  "CMakeFiles/io_edge_test.dir/io_edge_test.cpp.o"
  "CMakeFiles/io_edge_test.dir/io_edge_test.cpp.o.d"
  "io_edge_test"
  "io_edge_test.pdb"
  "io_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
