file(REMOVE_RECURSE
  "../bench/micro_serialization"
  "../bench/micro_serialization.pdb"
  "CMakeFiles/micro_serialization.dir/micro_serialization.cpp.o"
  "CMakeFiles/micro_serialization.dir/micro_serialization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
