file(REMOVE_RECURSE
  "libdpn_bench_harness.a"
)
