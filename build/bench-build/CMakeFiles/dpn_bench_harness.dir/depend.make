# Empty dependencies file for dpn_bench_harness.
# This may be replaced when dependencies are built.
