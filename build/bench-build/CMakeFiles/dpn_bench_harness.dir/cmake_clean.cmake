file(REMOVE_RECURSE
  "CMakeFiles/dpn_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/dpn_bench_harness.dir/harness.cpp.o.d"
  "libdpn_bench_harness.a"
  "libdpn_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpn_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
