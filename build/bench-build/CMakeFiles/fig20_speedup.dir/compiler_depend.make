# Empty compiler generated dependencies file for fig20_speedup.
# This may be replaced when dependencies are built.
