file(REMOVE_RECURSE
  "../bench/fig20_speedup"
  "../bench/fig20_speedup.pdb"
  "CMakeFiles/fig20_speedup.dir/fig20_speedup.cpp.o"
  "CMakeFiles/fig20_speedup.dir/fig20_speedup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
