# Empty dependencies file for micro_bigint.
# This may be replaced when dependencies are built.
