file(REMOVE_RECURSE
  "../bench/micro_bigint"
  "../bench/micro_bigint.pdb"
  "CMakeFiles/micro_bigint.dir/micro_bigint.cpp.o"
  "CMakeFiles/micro_bigint.dir/micro_bigint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bigint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
