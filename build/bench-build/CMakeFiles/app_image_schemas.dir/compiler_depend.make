# Empty compiler generated dependencies file for app_image_schemas.
# This may be replaced when dependencies are built.
