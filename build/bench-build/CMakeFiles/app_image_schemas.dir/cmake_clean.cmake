file(REMOVE_RECURSE
  "../bench/app_image_schemas"
  "../bench/app_image_schemas.pdb"
  "CMakeFiles/app_image_schemas.dir/app_image_schemas.cpp.o"
  "CMakeFiles/app_image_schemas.dir/app_image_schemas.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_image_schemas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
