file(REMOVE_RECURSE
  "../bench/micro_channels"
  "../bench/micro_channels.pdb"
  "CMakeFiles/micro_channels.dir/micro_channels.cpp.o"
  "CMakeFiles/micro_channels.dir/micro_channels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
