# Empty compiler generated dependencies file for micro_channels.
# This may be replaced when dependencies are built.
