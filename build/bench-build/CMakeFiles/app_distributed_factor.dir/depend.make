# Empty dependencies file for app_distributed_factor.
# This may be replaced when dependencies are built.
