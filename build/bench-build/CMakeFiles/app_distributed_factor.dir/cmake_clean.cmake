file(REMOVE_RECURSE
  "../bench/app_distributed_factor"
  "../bench/app_distributed_factor.pdb"
  "CMakeFiles/app_distributed_factor.dir/app_distributed_factor.cpp.o"
  "CMakeFiles/app_distributed_factor.dir/app_distributed_factor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_distributed_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
