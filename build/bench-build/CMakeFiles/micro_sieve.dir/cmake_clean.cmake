file(REMOVE_RECURSE
  "../bench/micro_sieve"
  "../bench/micro_sieve.pdb"
  "CMakeFiles/micro_sieve.dir/micro_sieve.cpp.o"
  "CMakeFiles/micro_sieve.dir/micro_sieve.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sieve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
