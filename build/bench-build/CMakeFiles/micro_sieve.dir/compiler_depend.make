# Empty compiler generated dependencies file for micro_sieve.
# This may be replaced when dependencies are built.
