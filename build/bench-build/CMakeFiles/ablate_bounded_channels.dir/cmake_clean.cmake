file(REMOVE_RECURSE
  "../bench/ablate_bounded_channels"
  "../bench/ablate_bounded_channels.pdb"
  "CMakeFiles/ablate_bounded_channels.dir/ablate_bounded_channels.cpp.o"
  "CMakeFiles/ablate_bounded_channels.dir/ablate_bounded_channels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_bounded_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
