# Empty compiler generated dependencies file for ablate_bounded_channels.
# This may be replaced when dependencies are built.
