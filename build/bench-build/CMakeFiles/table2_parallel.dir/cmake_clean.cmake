file(REMOVE_RECURSE
  "../bench/table2_parallel"
  "../bench/table2_parallel.pdb"
  "CMakeFiles/table2_parallel.dir/table2_parallel.cpp.o"
  "CMakeFiles/table2_parallel.dir/table2_parallel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
