
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_parallel.cpp" "bench-build/CMakeFiles/table2_parallel.dir/table2_parallel.cpp.o" "gcc" "bench-build/CMakeFiles/table2_parallel.dir/table2_parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/dpn_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dpn_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/factor/CMakeFiles/dpn_factor.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/dpn_image.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/dpn_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/dpn_par.dir/DependInfo.cmake"
  "/root/repo/build/src/rmi/CMakeFiles/dpn_rmi.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/dpn_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/processes/CMakeFiles/dpn_processes.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/dpn_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dpn_io.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/dpn_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dpn_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
