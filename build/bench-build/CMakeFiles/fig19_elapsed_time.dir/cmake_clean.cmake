file(REMOVE_RECURSE
  "../bench/fig19_elapsed_time"
  "../bench/fig19_elapsed_time.pdb"
  "CMakeFiles/fig19_elapsed_time.dir/fig19_elapsed_time.cpp.o"
  "CMakeFiles/fig19_elapsed_time.dir/fig19_elapsed_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_elapsed_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
