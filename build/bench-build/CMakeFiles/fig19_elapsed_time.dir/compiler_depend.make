# Empty compiler generated dependencies file for fig19_elapsed_time.
# This may be replaced when dependencies are built.
