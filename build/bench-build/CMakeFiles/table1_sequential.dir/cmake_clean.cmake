file(REMOVE_RECURSE
  "../bench/table1_sequential"
  "../bench/table1_sequential.pdb"
  "CMakeFiles/table1_sequential.dir/table1_sequential.cpp.o"
  "CMakeFiles/table1_sequential.dir/table1_sequential.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
