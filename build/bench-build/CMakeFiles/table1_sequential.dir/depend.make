# Empty dependencies file for table1_sequential.
# This may be replaced when dependencies are built.
