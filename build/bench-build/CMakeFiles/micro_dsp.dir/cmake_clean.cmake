file(REMOVE_RECURSE
  "../bench/micro_dsp"
  "../bench/micro_dsp.pdb"
  "CMakeFiles/micro_dsp.dir/micro_dsp.cpp.o"
  "CMakeFiles/micro_dsp.dir/micro_dsp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
